"""Engine-level integration tests: DDL, catalog, persistence, stats."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB, TxnMode
from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    SchemaError,
    TableExistsError,
    TableNotFoundError,
)


@pytest.fixture
def db():
    return ImmortalDB(buffer_pages=64)


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


class TestDDL:
    def test_create_and_lookup(self, db):
        table = db.create_table("t", COLS, key="k", immortal=True)
        assert db.table("t") is table
        assert table.immortal

    def test_create_duplicate_rejected(self, db):
        db.create_table("t", COLS, key="k")
        with pytest.raises(TableExistsError):
            db.create_table("t", COLS, key="k")

    def test_missing_table(self, db):
        with pytest.raises(TableNotFoundError):
            db.table("nope")

    def test_bad_key_column(self, db):
        with pytest.raises(SchemaError):
            db.create_table("t", COLS, key="missing")

    def test_immortal_flag_controls_behavior(self, db):
        """Section 4.1: the catalog flag enables history + PTT + AS OF."""
        immortal = db.create_table("imm", COLS, key="k", immortal=True)
        plain = db.create_table("pl", COLS, key="k")
        with db.transaction() as txn:
            immortal.insert(txn, {"k": 1, "v": "a"})
        with db.transaction() as txn:
            plain.insert(txn, {"k": 1, "v": "a"})
        # Only the immortal commit wrote a PTT entry.
        assert db.tsmgr.stats.ptt_inserts == 1

    def test_enable_snapshot_isolation(self, db):
        db.create_table("t", COLS, key="k")
        db.enable_snapshot_isolation("t")
        assert db.table("t").versioned

    def test_drop_table(self, db):
        db.create_table("t", COLS, key="k")
        db.drop_table("t")
        with pytest.raises(TableNotFoundError):
            db.table("t")

    def test_string_column_types_accepted(self, db):
        table = db.create_table(
            "t", [("k", "int"), ("v", "text"), ("f", "float")], key="k"
        )
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "x", "f": 2.5})
        with db.transaction() as txn:
            assert table.read(txn, 1)["f"] == 2.5


class TestCRUD:
    def test_insert_read_roundtrip(self, db):
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "hello"})
        with db.transaction() as txn:
            assert table.read(txn, 1) == {"k": 1, "v": "hello"}

    def test_duplicate_insert_rejected(self, db):
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        with pytest.raises(DuplicateKeyError):
            with db.transaction() as txn:
                table.insert(txn, {"k": 1, "v": "b"})

    def test_reinsert_after_delete_allowed(self, db):
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "first"})
        with db.transaction() as txn:
            table.delete(txn, 1)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "second"})
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == "second"

    def test_update_missing_key_rejected(self, db):
        table = db.create_table("t", COLS, key="k", immortal=True)
        with pytest.raises(KeyNotFoundError):
            with db.transaction() as txn:
                table.update(txn, 404, {"v": "x"})

    def test_delete_missing_key_rejected(self, db):
        table = db.create_table("t", COLS, key="k", immortal=True)
        with pytest.raises(KeyNotFoundError):
            with db.transaction() as txn:
                table.delete(txn, 404)

    def test_update_of_key_column_rejected(self, db):
        from repro.errors import SQLExecutionError

        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        with pytest.raises(SQLExecutionError):
            with db.transaction() as txn:
                table.update(txn, 1, {"k": 2})

    def test_scan_returns_key_order(self, db):
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            for k in (5, 1, 9, 3):
                table.insert(txn, {"k": k, "v": str(k)})
        with db.transaction() as txn:
            assert [r["k"] for r in table.scan(txn)] == [1, 3, 5, 9]

    def test_conventional_update_is_in_place(self, db):
        """The Fig-5 baseline path: no version chain growth."""
        table = db.create_table("t", COLS, key="k")
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        for i in range(50):
            with db.transaction() as txn:
                table.update(txn, 1, {"v": f"v{i}"})
        key = table.codec.encode_key(1)
        leaf = table.btree.search_leaf(key)
        assert len(list(leaf.chain(key))) == 1
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == "v49"


class TestFileDiskPersistence:
    def test_clean_shutdown_and_reopen(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = ImmortalDB(path, buffer_pages=32)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "persisted"})
        past = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "newer"})
        db.close()

        db2 = ImmortalDB(path, buffer_pages=32)
        table2 = db2.table("t")
        with db2.transaction() as txn:
            assert table2.read(txn, 1)["v"] == "newer"
        assert table2.read_as_of(past, 1)["v"] == "persisted"
        db2.close()

    def test_reopen_preserves_catalog_flags(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = ImmortalDB(path)
        db.create_table("t", COLS, key="k", immortal=True, snapshot=True)
        db.close()
        db2 = ImmortalDB(path)
        schema = db2.table("t").schema
        assert schema.immortal and schema.snapshot_enabled
        db2.close()


class TestStats:
    def test_stats_expose_all_counters(self, db):
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        stats = db.stats()
        assert stats["commits"] == 1
        assert stats["log_forces"] >= 1
        assert stats["ptt_inserts"] == 1

    def test_checkpoint_advances_and_collects(self, db):
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "b"})  # stamps the insert version
        with db.transaction() as txn:
            table.read(txn, 1)  # stamps the update version
        db.checkpoint(flush=True)
        collected = db.checkpoint(flush=True)
        assert collected >= 1


class TestAsOfRequiresImmortal:
    """Section 4.1: only IMMORTAL tables enable AS OF historical queries."""

    def test_asof_scan_rejected_on_conventional_table(self, db):
        from repro.errors import SQLExecutionError

        table = db.create_table("t", COLS, key="k", snapshot=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        with pytest.raises(SQLExecutionError):
            table.scan_as_of(db.now())

    def test_asof_read_rejected_on_conventional_table(self, db):
        from repro.errors import SQLExecutionError

        table = db.create_table("t", COLS, key="k")
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        historical = db.begin(as_of=db.now())
        with pytest.raises(SQLExecutionError):
            table.read(historical, 1)
        db.commit(historical)

    def test_history_rejected_on_conventional_table(self, db):
        from repro.errors import SQLExecutionError

        table = db.create_table("t", COLS, key="k", snapshot=True)
        with pytest.raises(SQLExecutionError):
            table.history(1)

    def test_snapshot_reads_still_allowed(self, db):
        from repro import TxnMode

        table = db.create_table("t", COLS, key="k", snapshot=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        reader = db.begin(TxnMode.SNAPSHOT)
        assert table.read(reader, 1)["v"] == "a"
        db.commit(reader)


class TestEngineSQLConvenience:
    def test_db_sql_roundtrip(self, db):
        db.sql("CREATE IMMORTAL TABLE t (k INT PRIMARY KEY, v TEXT)")
        db.sql("INSERT INTO t VALUES (1, 'hi')")
        rows = db.sql("SELECT * FROM t").rows
        assert rows == [{"k": 1, "v": "hi"}]

    def test_db_sql_keeps_transaction_bracketing(self, db):
        db.sql("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        db.sql("BEGIN TRAN")
        db.sql("INSERT INTO t VALUES (1, 'x')")
        db.sql("ROLLBACK TRAN")
        assert db.sql("SELECT * FROM t").rowcount == 0
