"""Unit tests for the catalog codec and the checkpoint manager."""

from __future__ import annotations

import pytest

from repro.core.catalog import Catalog, ColumnDef, TableSchema
from repro.core.rowcodec import ColumnType
from repro.errors import CatalogError, TableExistsError, TableNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.page import DataPage
from repro.wal.checkpoint import CheckpointManager
from repro.wal.log import LogManager
from repro.wal.records import BeginTxn, CheckpointEnd


def schema(name="t", table_id=1, **kw) -> TableSchema:
    return TableSchema(
        name=name,
        table_id=table_id,
        columns=[ColumnDef("k", ColumnType.INT), ColumnDef("v", ColumnType.TEXT)],
        key_column="k",
        root_pid=5,
        **kw,
    )


class TestCatalog:
    def test_blob_roundtrip(self):
        catalog = Catalog(next_table_id=9, ptt_root_pid=2)
        catalog.add_table(schema("a", 1, immortal=True, tsb_root_pid=7))
        catalog.add_table(schema("b", 2, snapshot_enabled=True))
        back = Catalog.from_blob(catalog.to_blob())
        assert back.next_table_id == 9
        assert back.ptt_root_pid == 2
        assert back.get("a").immortal
        assert back.get("a").tsb_root_pid == 7
        assert back.get("b").snapshot_enabled
        assert back.get("b").columns[1].column_type is ColumnType.TEXT

    def test_empty_blob_is_empty_catalog(self):
        catalog = Catalog.from_blob(b"")
        assert catalog.tables == {}
        assert catalog.next_table_id == 1

    def test_corrupt_blob_rejected(self):
        with pytest.raises(CatalogError):
            Catalog.from_blob(b"{not json")
        with pytest.raises(CatalogError):
            Catalog.from_blob(b'{"format": 99}')

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table(schema())
        with pytest.raises(TableExistsError):
            catalog.add_table(schema())

    def test_lookup_by_id(self):
        catalog = Catalog()
        catalog.add_table(schema("x", 4))
        assert catalog.by_id(4).name == "x"
        with pytest.raises(TableNotFoundError):
            catalog.by_id(99)

    def test_table_id_allocation_monotonic(self):
        catalog = Catalog()
        assert catalog.allocate_table_id() == 1
        assert catalog.allocate_table_id() == 2

    def test_remove_table(self):
        catalog = Catalog()
        catalog.add_table(schema())
        catalog.remove_table("t")
        with pytest.raises(TableNotFoundError):
            catalog.get("t")


class TestCheckpointManager:
    @pytest.fixture
    def env(self):
        class Env:
            def __init__(self):
                self.disk = InMemoryDisk()
                self.buffer = BufferPool(self.disk, capacity=16)
                self.log = LogManager()
                self.ckpt = CheckpointManager(self.log, self.buffer)

        return Env()

    def test_no_checkpoint_means_scan_from_zero(self, env):
        assert env.ckpt.redo_scan_start() == 0

    def test_checkpoint_records_att_and_dpt(self, env):
        page = env.buffer.new_page(lambda pid: DataPage(pid))
        env.buffer.flush_page(page.page_id)
        env.buffer.mark_dirty(page.page_id, 123)
        lsn = env.ckpt.take({7: (50, 0)})
        end = env.log.record_at(lsn)
        assert isinstance(end, CheckpointEnd)
        assert end.att == {7: (50, 0)}
        assert end.dpt == {page.page_id: 123}
        assert env.log.master_checkpoint_lsn == lsn

    def test_redo_scan_start_is_min_rec_lsn(self, env):
        a = env.buffer.new_page(lambda pid: DataPage(pid))
        b = env.buffer.new_page(lambda pid: DataPage(pid))
        env.buffer.flush_all()
        env.buffer.mark_dirty(a.page_id, 500)
        env.buffer.mark_dirty(b.page_id, 200)
        env.ckpt.take({})
        assert env.ckpt.redo_scan_start() == 200

    def test_flush_checkpoint_advances_scan_point(self, env):
        page = env.buffer.new_page(lambda pid: DataPage(pid))
        env.buffer.flush_page(page.page_id)
        env.buffer.mark_dirty(page.page_id, 10)
        env.ckpt.take({})
        early = env.ckpt.redo_scan_start()
        env.log.append(BeginTxn(tid=1))
        env.ckpt.take({}, flush=True)
        late = env.ckpt.redo_scan_start()
        assert late > early

    def test_checkpoint_is_durable(self, env):
        env.ckpt.take({})
        assert env.log.flushed_lsn == env.log.end_lsn

    def test_counts_checkpoints(self, env):
        env.ckpt.take({})
        env.ckpt.take({})
        assert env.ckpt.checkpoints_taken == 2
