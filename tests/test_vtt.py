"""Tests for the Volatile Timestamp Table and its RefCount protocol."""

from __future__ import annotations

import pytest

from repro.clock import SN_INVALID, Timestamp
from repro.errors import NotYetCommittedError, UnknownTransactionError
from repro.timestamp.vtt import VolatileTimestampTable


@pytest.fixture
def vtt():
    return VolatileTimestampTable()


TS = Timestamp(100, 1)


class TestStages:
    def test_stage_one_entry_is_active_with_invalid_sn(self, vtt):
        entry = vtt.begin(1)
        assert entry.is_active
        assert entry.sn == SN_INVALID
        assert entry.refcount == 0

    def test_stage_two_increments_refcount(self, vtt):
        vtt.begin(1)
        vtt.increment(1)
        vtt.increment(1)
        assert vtt.get(1).refcount == 2

    def test_stage_three_records_timestamp(self, vtt):
        vtt.begin(1)
        vtt.increment(1)
        entry = vtt.set_committed(1, TS, end_lsn=500)
        assert not entry.is_active
        assert entry.timestamp == TS
        assert entry.done_lsn is None  # one version still unstamped

    def test_commit_with_nothing_to_stamp_is_done_immediately(self, vtt):
        vtt.begin(1)
        entry = vtt.set_committed(1, TS, end_lsn=500)
        assert entry.done_lsn == 500

    def test_stage_four_decrement_to_zero_records_lsn(self, vtt):
        vtt.begin(1)
        vtt.increment(1)
        vtt.increment(1)
        vtt.set_committed(1, TS, end_lsn=10)
        assert vtt.decrement(1, end_lsn=20) == 1
        assert vtt.get(1).done_lsn is None
        assert vtt.decrement(1, end_lsn=30) == 0
        assert vtt.get(1).done_lsn == 30

    def test_timestamp_of_active_entry_fails(self, vtt):
        vtt.begin(1)
        with pytest.raises(NotYetCommittedError):
            _ = vtt.get(1).timestamp


class TestEdgeCases:
    def test_duplicate_begin_rejected(self, vtt):
        vtt.begin(1)
        with pytest.raises(ValueError):
            vtt.begin(1)

    def test_refcount_underflow_rejected(self, vtt):
        vtt.begin(1)
        vtt.set_committed(1, TS, end_lsn=1)
        with pytest.raises(ValueError):
            vtt.decrement(1, end_lsn=2)

    def test_unknown_tid_raises(self, vtt):
        with pytest.raises(UnknownTransactionError):
            vtt.require(99)
        assert vtt.get(99) is None

    def test_cached_from_ptt_has_undefined_refcount(self, vtt):
        entry = vtt.cache_from_ptt(5, TS)
        assert entry.refcount is None
        vtt.increment(5)   # stays undefined
        assert vtt.get(5).refcount is None
        assert vtt.decrement(5, end_lsn=1) is None

    def test_drop_is_idempotent(self, vtt):
        vtt.begin(1)
        vtt.drop(1)
        vtt.drop(1)
        assert 1 not in vtt


class TestGCCandidates:
    def test_only_complete_entries_qualify(self, vtt):
        vtt.begin(1)                       # active: no
        vtt.begin(2)
        vtt.increment(2)
        vtt.set_committed(2, TS, end_lsn=5)  # refcount 1: no
        vtt.begin(3)
        vtt.set_committed(3, TS, end_lsn=7)  # done: yes
        vtt.cache_from_ptt(4, TS)            # undefined: no
        assert [tid for tid, _ in vtt.gc_candidates()] == [3]

    def test_decrement_to_zero_becomes_candidate(self, vtt):
        vtt.begin(1)
        vtt.increment(1)
        vtt.set_committed(1, TS, end_lsn=5)
        assert vtt.gc_candidates() == []
        vtt.decrement(1, end_lsn=9)
        assert [tid for tid, _ in vtt.gc_candidates()] == [1]

    def test_clear_simulates_crash(self, vtt):
        vtt.begin(1)
        vtt.set_committed(1, TS, end_lsn=1)
        vtt.clear()
        assert len(vtt) == 0
