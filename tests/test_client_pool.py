"""Client pool: checkout/checkin, health checks, dead-peer detection.

The pool is transport-agnostic, so most tests drive it with scripted fake
clients (deterministic, no sockets); one end-to-end test wires it to real
``ServiceClient`` connections against a live ``SQLService``.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ConnectionLostError,
    DeadPeerError,
    PoolExhaustedError,
)
from repro.service.pool import ClientPool


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self.t

    def sleep(self, s: float) -> None:
        self.sleeps.append(s)
        self.t += s


class FakeClient:
    def __init__(self, name: str) -> None:
        self.name = name
        self.pings = 0
        self.closed = False
        self.ping_fails = False

    def ping(self) -> dict:
        self.pings += 1
        if self.ping_fails:
            raise ConnectionLostError(f"{self.name}: peer gone")
        return {"status": "ok"}

    def close(self) -> None:
        self.closed = True


class FakeFactory:
    """Scripted dialer: each call succeeds or raises per the script."""

    def __init__(self, script: list[bool] | None = None) -> None:
        self.script = script   # None = always succeed
        self.calls = 0
        self.made: list[FakeClient] = []

    def __call__(self) -> FakeClient:
        self.calls += 1
        if self.script is not None:
            ok = self.script.pop(0) if self.script else True
            if not ok:
                raise ConnectionLostError("dial refused")
        client = FakeClient(f"conn{self.calls}")
        self.made.append(client)
        return client


def make_pool(factory=None, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("retry_step_ms", 1.0)
    pool = ClientPool(
        factory or FakeFactory(),
        now=clock.now, sleep=clock.sleep, **kwargs,
    )
    return pool, clock


class TestCheckout:
    def test_acquire_dials_then_reuses_lifo(self):
        factory = FakeFactory()
        pool, clock = make_pool(factory, max_size=2)
        a = pool.acquire()
        b = pool.acquire()
        assert factory.calls == 2
        pool.release(b)
        pool.release(a)
        assert pool.idle == 2
        # LIFO: the most recently released connection comes back first.
        assert pool.acquire() is a
        assert factory.calls == 2
        assert pool.stats.reuses == 1

    def test_capacity_is_enforced(self):
        pool, clock = make_pool(max_size=1)
        held = pool.acquire()
        with pytest.raises(PoolExhaustedError):
            pool.acquire()
        assert pool.stats.exhausted == 1
        pool.release(held)
        assert pool.acquire() is held

    def test_release_discard_closes_and_frees_the_slot(self):
        factory = FakeFactory()
        pool, clock = make_pool(factory, max_size=1)
        client = pool.acquire()
        pool.release(client, discard=True)
        assert client.closed
        assert pool.idle == 0
        assert pool.acquire() is not client   # fresh dial, slot was freed

    def test_connection_context_manager_returns_on_success(self):
        pool, clock = make_pool(max_size=1)
        with pool.connection() as client:
            assert client.ping()["status"] == "ok"
        assert pool.idle == 1

    def test_connection_context_manager_discards_on_transport_error(self):
        pool, clock = make_pool(max_size=1)
        with pytest.raises(ConnectionLostError):
            with pool.connection() as client:
                raise ConnectionLostError("wire died mid-request")
        assert pool.idle == 0
        assert client.closed

    def test_close_shuts_idle_connections(self):
        factory = FakeFactory()
        pool, clock = make_pool(factory, max_size=3)
        conns = [pool.acquire() for _ in range(3)]
        for c in conns:
            pool.release(c)
        pool.close()
        assert all(c.closed for c in conns)
        assert pool.idle == 0


class TestHealthChecks:
    def test_fresh_idle_connection_skips_the_ping(self):
        pool, clock = make_pool(check_idle_s=5.0)
        client = pool.acquire()
        pool.release(client)
        assert pool.acquire() is client
        assert client.pings == 0

    def test_stale_idle_connection_is_pinged(self):
        pool, clock = make_pool(check_idle_s=5.0)
        client = pool.acquire()
        pool.release(client)
        clock.t += 10.0
        assert pool.acquire() is client
        assert client.pings == 1
        assert pool.stats.health_checks == 1

    def test_dead_idle_connection_is_discarded_and_replaced(self):
        factory = FakeFactory()
        pool, clock = make_pool(factory, check_idle_s=5.0, max_size=2)
        client = pool.acquire()
        pool.release(client)
        clock.t += 10.0
        client.ping_fails = True
        replacement = pool.acquire()
        assert replacement is not client
        assert client.closed
        assert pool.stats.dead_connections == 1

    def test_check_idle_sweeps_the_whole_pool(self):
        factory = FakeFactory()
        pool, clock = make_pool(factory, max_size=3)
        conns = [pool.acquire() for _ in range(3)]
        for c in conns:
            pool.release(c)
        conns[1].ping_fails = True
        assert pool.check_idle() == 2
        assert pool.idle == 2
        assert conns[1].closed
        assert pool.stats.dead_connections == 1


class TestReconnectAndDeadPeer:
    def test_dial_retries_with_seeded_backoff(self):
        factory = FakeFactory(script=[False, False, True])
        pool, clock = make_pool(factory)
        client = pool.acquire()
        assert client is factory.made[0]
        assert factory.calls == 3
        assert pool.stats.dial_failures == 2
        assert len(clock.sleeps) == 2          # backed off before retries
        assert clock.sleeps == sorted(clock.sleeps)   # non-decreasing ladder

    def test_peer_declared_dead_after_consecutive_failures(self):
        factory = FakeFactory(script=[False] * 10)
        pool, clock = make_pool(factory, dead_after=3, dead_retry_s=2.0)
        with pytest.raises(DeadPeerError) as exc_info:
            pool.acquire()
        assert exc_info.value.retry_after_s == 2.0
        assert pool.peer_dead
        assert pool.stats.dead_peer_trips == 1
        # While quarantined: fail fast, no dialing at all.
        dials_before = factory.calls
        with pytest.raises(DeadPeerError):
            pool.acquire()
        assert factory.calls == dials_before

    def test_quarantine_lapses_into_single_probe_dial(self):
        factory = FakeFactory(script=[False, False, False, True])
        pool, clock = make_pool(factory, dead_after=3, dead_retry_s=2.0)
        with pytest.raises(DeadPeerError):
            pool.acquire()
        clock.t += 3.0
        assert not pool.peer_dead
        dials_before = factory.calls
        client = pool.acquire()               # the probe dial succeeds
        assert factory.calls == dials_before + 1   # exactly one probe
        assert client is factory.made[-1]
        assert not pool.peer_dead

    def test_failed_probe_requarantines(self):
        factory = FakeFactory(script=[False] * 10)
        pool, clock = make_pool(factory, dead_after=3, dead_retry_s=2.0)
        with pytest.raises(DeadPeerError):
            pool.acquire()
        clock.t += 3.0
        with pytest.raises(DeadPeerError):
            pool.acquire()
        assert pool.peer_dead
        assert pool.stats.dead_peer_trips == 2


class TestEndToEnd:
    def test_pool_serves_sql_over_real_sockets(self):
        from repro.core.engine import ImmortalDB
        from repro.service.client import ServiceClient
        from repro.service.server import ThreadedService

        db = ImmortalDB()
        db.sql("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        with ThreadedService(db, port=0, pool_workers=2) as svc:
            pool = ClientPool(
                lambda: ServiceClient("127.0.0.1", svc.port),
                max_size=2,
            )
            with pool.connection() as client:
                ok = client.execute("INSERT INTO t (k, v) VALUES (1, 'a')")
                assert ok["status"] == "ok"
            with pool.connection() as client:
                got = client.execute("SELECT k, v FROM t")
                assert got["rows"] == [{"k": 1, "v": "a"}]
            assert pool.stats.dials == 1      # second checkout reused
            assert pool.stats.reuses == 1
            pool.close()
