"""Tests for the lock manager."""

from __future__ import annotations

import pytest

from repro.concurrency.locks import (
    LockManager,
    LockMode,
    record_resource,
    table_resource,
)
from repro.errors import LockConflictError


@pytest.fixture
def locks():
    return LockManager()


class TestCompatibility:
    def test_shared_locks_coexist(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        locks.lock_record_shared(2, 1, b"k")
        assert locks.locks_held(1) == 2  # IS on table + S on record

    def test_exclusive_conflicts_with_shared(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        with pytest.raises(LockConflictError) as err:
            locks.lock_record_exclusive(2, 1, b"k")
        assert err.value.holder_tid == 1

    def test_shared_conflicts_with_exclusive(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        with pytest.raises(LockConflictError):
            locks.lock_record_shared(2, 1, b"k")

    def test_different_records_do_not_conflict(self, locks):
        locks.lock_record_exclusive(1, 1, b"k1")
        locks.lock_record_exclusive(2, 1, b"k2")

    def test_different_tables_do_not_conflict(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        locks.lock_record_exclusive(2, 2, b"k")

    def test_intents_coexist_on_table(self, locks):
        locks.lock_record_exclusive(1, 1, b"k1")
        locks.lock_record_exclusive(2, 1, b"k2")
        assert locks.mode_held(1, table_resource(1)) == LockMode.IX
        assert locks.mode_held(2, table_resource(1)) == LockMode.IX

    def test_table_s_conflicts_with_ix(self, locks):
        """A full-table scan lock blocks concurrent writers."""
        locks.lock_record_exclusive(1, 1, b"k")
        with pytest.raises(LockConflictError):
            locks.lock_table_shared(2, 1)

    def test_table_s_coexists_with_is(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        locks.lock_table_shared(2, 1)


class TestReentrancy:
    def test_reacquire_same_mode_is_noop(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        held = locks.locks_held(1)
        locks.lock_record_exclusive(1, 1, b"k")
        assert locks.locks_held(1) == held

    def test_upgrade_s_to_x_when_sole_holder(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        locks.lock_record_exclusive(1, 1, b"k")
        assert locks.mode_held(1, record_resource(1, b"k")) == LockMode.X
        assert locks.upgrades >= 1

    def test_upgrade_blocked_by_other_reader(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        locks.lock_record_shared(2, 1, b"k")
        with pytest.raises(LockConflictError):
            locks.lock_record_exclusive(1, 1, b"k")

    def test_x_not_downgraded_by_s_request(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        locks.lock_record_shared(1, 1, b"k")
        assert locks.mode_held(1, record_resource(1, b"k")) == LockMode.X


class TestRelease:
    def test_release_all_frees_resources(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        released = locks.release_all(1)
        assert released == 2
        locks.lock_record_exclusive(2, 1, b"k")  # now free

    def test_release_unknown_tid_is_harmless(self, locks):
        assert locks.release_all(42) == 0

    def test_total_locks(self, locks):
        locks.lock_record_shared(1, 1, b"a")
        locks.lock_record_shared(2, 1, b"b")
        assert locks.total_locks() == 4  # 2 IS + 2 S
        locks.release_all(1)
        assert locks.total_locks() == 2
