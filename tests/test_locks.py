"""Tests for the lock manager."""

from __future__ import annotations

import threading

import pytest

from repro.concurrency.locks import (
    LockManager,
    LockMode,
    record_resource,
    table_resource,
)
from repro.errors import ConcurrencyError, DeadlockError, LockConflictError


@pytest.fixture
def locks():
    return LockManager()


@pytest.fixture
def blocking():
    return LockManager(blocking=True, wait_timeout_s=10.0)


class TestCompatibility:
    def test_shared_locks_coexist(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        locks.lock_record_shared(2, 1, b"k")
        assert locks.locks_held(1) == 2  # IS on table + S on record

    def test_exclusive_conflicts_with_shared(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        with pytest.raises(LockConflictError) as err:
            locks.lock_record_exclusive(2, 1, b"k")
        assert err.value.holder_tid == 1

    def test_shared_conflicts_with_exclusive(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        with pytest.raises(LockConflictError):
            locks.lock_record_shared(2, 1, b"k")

    def test_different_records_do_not_conflict(self, locks):
        locks.lock_record_exclusive(1, 1, b"k1")
        locks.lock_record_exclusive(2, 1, b"k2")

    def test_different_tables_do_not_conflict(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        locks.lock_record_exclusive(2, 2, b"k")

    def test_intents_coexist_on_table(self, locks):
        locks.lock_record_exclusive(1, 1, b"k1")
        locks.lock_record_exclusive(2, 1, b"k2")
        assert locks.mode_held(1, table_resource(1)) == LockMode.IX
        assert locks.mode_held(2, table_resource(1)) == LockMode.IX

    def test_table_s_conflicts_with_ix(self, locks):
        """A full-table scan lock blocks concurrent writers."""
        locks.lock_record_exclusive(1, 1, b"k")
        with pytest.raises(LockConflictError):
            locks.lock_table_shared(2, 1)

    def test_table_s_coexists_with_is(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        locks.lock_table_shared(2, 1)


class TestReentrancy:
    def test_reacquire_same_mode_is_noop(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        held = locks.locks_held(1)
        locks.lock_record_exclusive(1, 1, b"k")
        assert locks.locks_held(1) == held

    def test_upgrade_s_to_x_when_sole_holder(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        locks.lock_record_exclusive(1, 1, b"k")
        assert locks.mode_held(1, record_resource(1, b"k")) == LockMode.X
        assert locks.upgrades >= 1

    def test_upgrade_blocked_by_other_reader(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        locks.lock_record_shared(2, 1, b"k")
        with pytest.raises(LockConflictError):
            locks.lock_record_exclusive(1, 1, b"k")

    def test_x_not_downgraded_by_s_request(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        locks.lock_record_shared(1, 1, b"k")
        assert locks.mode_held(1, record_resource(1, b"k")) == LockMode.X


class TestRelease:
    def test_release_all_frees_resources(self, locks):
        locks.lock_record_exclusive(1, 1, b"k")
        released = locks.release_all(1)
        assert released == 2
        locks.lock_record_exclusive(2, 1, b"k")  # now free

    def test_release_unknown_tid_is_harmless(self, locks):
        assert locks.release_all(42) == 0

    def test_total_locks(self, locks):
        locks.lock_record_shared(1, 1, b"a")
        locks.lock_record_shared(2, 1, b"b")
        assert locks.total_locks() == 4  # 2 IS + 2 S
        locks.release_all(1)
        assert locks.total_locks() == 2


class TestConflictErrorPayload:
    def test_error_carries_full_waits_for_edge(self, locks):
        locks.lock_record_shared(1, 1, b"k")
        locks.lock_record_shared(2, 1, b"k")
        with pytest.raises(LockConflictError) as err:
            locks.lock_record_exclusive(3, 1, b"k")
        e = err.value
        assert e.waiter_tid == 3
        assert set(e.holder_tids) == {1, 2}
        assert set(e.holder_modes) == {LockMode.S}
        assert e.resource == record_resource(1, b"k")
        assert e.requested_mode == LockMode.X
        assert e.holder_tid in (1, 2)   # legacy field still populated


def _in_thread(fn):
    thread = threading.Thread(target=fn, daemon=True)
    thread.start()
    return thread


class TestBlockingMode:
    def test_waiter_parks_until_release(self, blocking):
        blocking.lock_record_exclusive(1, 1, b"k")
        acquired = threading.Event()

        def waiter():
            blocking.lock_record_exclusive(2, 1, b"k")
            acquired.set()

        thread = _in_thread(waiter)
        assert not acquired.wait(0.05)         # genuinely parked
        assert blocking.waiting_tids() == [2]
        blocking.release_all(1)
        assert acquired.wait(5.0)
        thread.join(5.0)
        assert blocking.mode_held(2, record_resource(1, b"k")) == LockMode.X
        assert blocking.stats.lock_waits == 1
        assert blocking.stats.lock_wait_ns > 0

    def test_fifo_handoff_order(self, blocking):
        blocking.lock_record_exclusive(1, 1, b"k")
        order: list[int] = []
        mu = threading.Lock()

        def waiter(tid):
            def run():
                blocking.lock_record_exclusive(tid, 1, b"k")
                with mu:
                    order.append(tid)
                blocking.release_all(tid)
            return run

        t2 = _in_thread(waiter(2))
        while blocking.waiting_tids() != [2]:
            pass
        t3 = _in_thread(waiter(3))
        while blocking.waiting_tids() != [2, 3]:
            pass
        blocking.release_all(1)
        t2.join(5.0)
        t3.join(5.0)
        assert order == [2, 3]   # grant order == request order

    def test_compatible_waiter_barges_past_blocked_stranger(self, blocking):
        """An IS request behind a blocked IX waiter must not inherit its
        wait (it conflicts with neither the holder nor the IX)."""
        blocking.acquire(1, table_resource(1), LockMode.S)
        parked = threading.Event()

        def ix_waiter():
            parked.set()
            blocking.acquire(2, table_resource(1), LockMode.IX)
            blocking.release_all(2)

        thread = _in_thread(ix_waiter)
        parked.wait(5.0)
        while blocking.waiting_tids() != [2]:
            pass
        blocking.acquire(3, table_resource(1), LockMode.IS)   # no park
        assert blocking.mode_held(3, table_resource(1)) == LockMode.IS
        blocking.release_all(1)
        blocking.release_all(3)
        thread.join(5.0)

    def test_two_txn_deadlock_detected_and_victim_aborted(self, blocking):
        blocking.lock_record_exclusive(1, 1, b"a")
        blocking.lock_record_exclusive(2, 1, b"b")
        victim_err: list[DeadlockError] = []
        survivor_done = threading.Event()

        def t1():
            blocking.lock_record_exclusive(1, 1, b"b")   # waits for 2
            survivor_done.set()

        thread1 = _in_thread(t1)
        while blocking.waiting_tids() != [1]:
            pass
        with pytest.raises(DeadlockError) as err:
            blocking.lock_record_exclusive(2, 1, b"a")   # closes the cycle
        victim_err.append(err.value)
        blocking.release_all(2)                          # victim aborts
        assert survivor_done.wait(5.0)
        thread1.join(5.0)
        e = victim_err[0]
        assert e.victim_tid == 2                         # youngest by default
        assert set(e.cycle) == {1, 2}
        assert blocking.stats.deadlocks_detected == 1

    def test_victim_policy_is_pluggable_and_deterministic(self):
        """With victim_policy=min the OLDEST transaction dies instead."""
        locks = LockManager(
            blocking=True, wait_timeout_s=10.0, victim_policy=min
        )
        locks.lock_record_exclusive(1, 1, b"a")
        locks.lock_record_exclusive(2, 1, b"b")
        doomed = []
        done = threading.Event()

        def t1():
            try:
                locks.lock_record_exclusive(1, 1, b"b")
            except DeadlockError as exc:
                doomed.append(exc)
                locks.release_all(1)
            done.set()

        thread = _in_thread(t1)
        while locks.waiting_tids() != [1]:
            pass
        locks.lock_record_exclusive(2, 1, b"a")   # detector; survivor
        assert done.wait(5.0)
        thread.join(5.0)
        assert len(doomed) == 1
        assert doomed[0].victim_tid == 1
        assert locks.mode_held(2, record_resource(1, b"a")) == LockMode.X

    def test_crossing_upgrades_deadlock_not_livelock(self, blocking):
        """Two S holders both requesting X is a classic upgrade deadlock."""
        blocking.lock_record_shared(1, 1, b"k")
        blocking.lock_record_shared(2, 1, b"k")
        outcome: dict[int, str] = {}
        mu = threading.Lock()

        def upgrader(tid):
            def run():
                try:
                    blocking.lock_record_exclusive(tid, 1, b"k")
                    with mu:
                        outcome[tid] = "upgraded"
                except DeadlockError:
                    with mu:
                        outcome[tid] = "victim"
                    blocking.release_all(tid)
            return run

        t1 = _in_thread(upgrader(1))
        while blocking.waiting_tids() != [1]:
            pass
        t2 = _in_thread(upgrader(2))
        t1.join(5.0)
        t2.join(5.0)
        assert sorted(outcome.values()) == ["upgraded", "victim"]
        assert outcome[2] == "victim"   # youngest
        assert blocking.mode_held(1, record_resource(1, b"k")) == LockMode.X

    def test_one_thread_per_transaction_enforced(self, blocking):
        blocking.lock_record_exclusive(1, 1, b"a")
        blocking.lock_record_exclusive(1, 1, b"b")
        parked = threading.Event()

        def waiter():
            parked.set()
            try:
                blocking.lock_record_exclusive(2, 1, b"a")
            except ConcurrencyError:
                pass
            finally:
                blocking.release_all(2)

        thread = _in_thread(waiter)
        parked.wait(5.0)
        while blocking.waiting_tids() != [2]:
            pass
        with pytest.raises(ConcurrencyError, match="already waiting"):
            blocking.acquire(2, record_resource(1, b"b"), LockMode.X)
        blocking.release_all(1)
        thread.join(5.0)

    def test_victim_choice_stable_across_repeats(self):
        """The same cycle picks the same victim every time (seeded retry
        schedules depend on it)."""
        for _ in range(5):
            locks = LockManager(blocking=True, wait_timeout_s=10.0)
            locks.lock_record_exclusive(7, 1, b"a")
            locks.lock_record_exclusive(9, 1, b"b")
            victims = []
            done = threading.Event()

            def t7():
                try:
                    locks.lock_record_exclusive(7, 1, b"b")
                except DeadlockError as exc:
                    victims.append(exc.victim_tid)
                    locks.release_all(7)
                done.set()

            thread = _in_thread(t7)
            while locks.waiting_tids() != [7]:
                pass
            try:
                locks.lock_record_exclusive(9, 1, b"a")
            except DeadlockError as exc:
                victims.append(exc.victim_tid)
                locks.release_all(9)
            done.wait(5.0)
            thread.join(5.0)
            assert victims == [9]   # always the youngest, never a race
