"""Page-image encode caching: every mutation path must invalidate.

``Page.to_bytes()`` memoizes the serialized image keyed by a per-page
mutation epoch.  The cache is only correct if *every* way a page changes
bumps the epoch: attribute assignment (``__setattr__``), in-place record
mutation signalled through ``BufferPool.mark_dirty``, and the stamping
pass's explicit ``touch()`` (which runs on the pre-flush path that skips
``mark_dirty``).  Each test mutates through one path and checks the cached
image against a fresh uncached ``_encode()``.
"""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB
from repro.clock import Timestamp
from repro.storage.page import DataPage, decode_page

COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


@pytest.fixture
def db():
    return ImmortalDB(buffer_pages=64)


@pytest.fixture
def table(db):
    return db.create_table("t", COLS, key="k", immortal=True)


def data_pages(db):
    return [p for p in db.buffer.cached_pages() if isinstance(p, DataPage)]


def assert_images_fresh(db):
    """The cached image of every pooled page equals an uncached encode."""
    for page in db.buffer.cached_pages():
        assert page.to_bytes() == page._encode(), (
            f"stale cached image for page {page.page_id} "
            f"({type(page).__name__})"
        )


class TestCacheMechanics:
    def test_repeat_encode_returns_cached_image(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        page = data_pages(db)[0]
        first = page.to_bytes()
        assert page.to_bytes() is first        # memoized, not re-encoded

    def test_attribute_assignment_invalidates(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        page = data_pages(db)[0]
        stale = page.to_bytes()
        page.lsn = page.lsn + 1                # recovery/SMO write path
        assert page.to_bytes() != stale
        assert page.to_bytes() == page._encode()

    def test_touch_invalidates(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        page = data_pages(db)[0]
        first = page.to_bytes()
        page.touch()
        assert page.to_bytes() is not first
        assert page.to_bytes() == first        # same content, re-encoded


class TestMutationPaths:
    def test_insert_invalidates(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        stale = data_pages(db)[0].to_bytes()
        with db.transaction() as txn:
            table.insert(txn, {"k": 2, "v": "b"})
        page = data_pages(db)[0]
        assert page.to_bytes() != stale
        assert_images_fresh(db)

    def test_update_version_chain_invalidates(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        stale = {p.page_id: p.to_bytes() for p in data_pages(db)}
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "b"})
        changed = [
            p for p in data_pages(db)
            if p.to_bytes() != stale.get(p.page_id)
        ]
        assert changed, "update mutated no cached page image"
        assert_images_fresh(db)

    def test_delete_stub_invalidates(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        stale = data_pages(db)[0].to_bytes()
        with db.transaction() as txn:
            table.delete(txn, 1)
        assert data_pages(db)[0].to_bytes() != stale
        assert_images_fresh(db)

    def test_stamping_via_flush_hook_invalidates(self, db, table):
        """``stamp_page(mark_dirty=False)`` bypasses mark_dirty — the
        explicit ``touch()`` inside stamping must still invalidate."""
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        page = data_pages(db)[0]
        stale = page.to_bytes()
        assert db.tsmgr.stamp_page(page, mark_dirty=False) >= 1
        assert page.to_bytes() != stale
        assert page.to_bytes() == page._encode()
        # ... and the stamped timestamp is actually in the image.
        roundtrip = decode_page(page.to_bytes())
        assert all(
            v.is_timestamped for v in roundtrip.versions
        ), "flushed image lost the stamps"

    def test_page_split_invalidates_every_leaf(self, db, table):
        big = "x" * 600
        for k in range(40):                   # enough to force leaf splits
            with db.transaction() as txn:
                table.insert(txn, {"k": k, "v": big})
        assert len(data_pages(db)) > 1, "workload never split a page"
        assert_images_fresh(db)

    def test_checksum_roundtrip_keeps_cache_fresh(self):
        db = ImmortalDB(buffer_pages=64, page_checksums=True)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        db.buffer.flush_all()
        pid = data_pages(db)[0].page_id
        raw = db.disk.read_page(pid)          # CRC-stamped image
        page = decode_page(raw)
        assert page.to_bytes() == page._encode()
        assert_images_fresh(db)

    def test_flushed_image_matches_fresh_encode(self, db, table):
        """End to end: after a flush cycle (which stamps via the hook),
        what the disk holds decodes back to a page whose cached and fresh
        images agree — i.e. no mutation path leaked past the cache."""
        for k in range(10):
            with db.transaction() as txn:
                table.insert(txn, {"k": k, "v": f"v{k}"})
        with db.transaction() as txn:
            table.update(txn, 3, {"v": "new"})
        db.buffer.flush_all()
        assert_images_fresh(db)
        for page in data_pages(db):
            on_disk = db.disk.read_page(page.page_id)
            assert on_disk == page.to_bytes()


def test_stamp_writes_through_cache_unit():
    """Minimal unit check, no engine: stamping a version then touching the
    page produces an image containing the timestamp."""
    page = DataPage(page_id=7, immortal=True, table_id=1)
    from repro.storage.record import RecordVersion

    page.insert_version(RecordVersion.new(b"\x01", b"p", 9))
    stale = page.to_bytes()
    version = next(iter(page.unstamped_versions()))
    version.stamp(Timestamp(1234, 1))
    assert page.to_bytes() == stale            # in-place: cache can't see it
    page.touch()                               # ... which is why stamp_page touches
    assert page.to_bytes() != stale
    assert page.to_bytes() == page._encode()
