"""Tests for the page stores and their I/O accounting."""

from __future__ import annotations

import pytest

from repro.errors import PageNotFoundError, StorageError
from repro.storage.constants import META_PAGE_ID, PAGE_SIZE
from repro.storage.disk import DiskStats, FileDisk, InMemoryDisk


@pytest.fixture(params=["memory", "file"])
def disk(request, tmp_path):
    if request.param == "memory":
        return InMemoryDisk()
    return FileDisk(tmp_path / "test.db")


class TestPageStore:
    def test_meta_page_always_exists(self, disk):
        assert disk.exists(META_PAGE_ID)
        assert disk.read_page(META_PAGE_ID) == bytes(PAGE_SIZE)

    def test_allocate_then_write_then_read(self, disk):
        pid = disk.allocate()
        image = bytes([7]) * PAGE_SIZE
        disk.write_page(pid, image)
        assert disk.read_page(pid) == image

    def test_allocation_ids_are_sequential(self, disk):
        assert [disk.allocate() for _ in range(3)] == [1, 2, 3]

    def test_fresh_page_is_zeroed(self, disk):
        pid = disk.allocate()
        assert disk.read_page(pid) == bytes(PAGE_SIZE)

    def test_read_unallocated_page_fails(self, disk):
        with pytest.raises(PageNotFoundError):
            disk.read_page(999)

    def test_write_unallocated_page_fails(self, disk):
        with pytest.raises(PageNotFoundError):
            disk.write_page(999, bytes(PAGE_SIZE))

    def test_wrong_image_size_rejected(self, disk):
        pid = disk.allocate()
        with pytest.raises(StorageError):
            disk.write_page(pid, b"short")

    def test_page_count_tracks_allocations(self, disk):
        base = disk.page_count
        disk.allocate()
        disk.allocate()
        assert disk.page_count == base + 2


class TestIOAccounting:
    def test_reads_and_writes_counted(self, disk):
        pid = disk.allocate()
        disk.write_page(pid, bytes(PAGE_SIZE))
        disk.read_page(pid)
        disk.read_page(pid)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2

    def test_sequential_classification(self, disk):
        pids = [disk.allocate() for _ in range(4)]
        for pid in pids:
            disk.read_page(pid)
        # pids are 1,2,3,4: three of the four reads follow their predecessor.
        assert disk.stats.sequential_reads == 3
        assert disk.stats.random_reads == 1

    def test_random_classification(self, disk):
        pids = [disk.allocate() for _ in range(5)]
        disk.read_page(pids[4])
        disk.read_page(pids[0])
        disk.read_page(pids[3])
        assert disk.stats.sequential_reads == 0

    def test_stats_delta(self):
        stats = DiskStats(reads=10, writes=5, sequential_reads=2)
        later = DiskStats(reads=15, writes=7, sequential_reads=4)
        delta = later.delta(stats)
        assert (delta.reads, delta.writes, delta.sequential_reads) == (5, 2, 2)

    def test_snapshot_is_independent(self):
        stats = DiskStats(reads=1)
        snap = stats.snapshot()
        stats.reads = 100
        assert snap.reads == 1


class TestFileDiskPersistence:
    def test_reopen_preserves_pages(self, tmp_path):
        path = tmp_path / "persist.db"
        disk = FileDisk(path)
        pid = disk.allocate()
        disk.write_page(pid, bytes([9]) * PAGE_SIZE)
        disk.close()

        reopened = FileDisk(path)
        assert reopened.page_count == 2
        assert reopened.read_page(pid) == bytes([9]) * PAGE_SIZE
        reopened.close()

    def test_corrupt_size_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            FileDisk(path)
