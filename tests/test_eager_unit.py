"""Unit tests for the eager timestamping baseline (paper Section 2.2)."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB
from repro.wal.records import StampOp


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


@pytest.fixture
def db():
    return ImmortalDB(buffer_pages=64, timestamping="eager")


@pytest.fixture
def table(db):
    return db.create_table("t", COLS, key="k", immortal=True)


class TestEagerCommit:
    def test_versions_stamped_at_commit(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "a"})
        table.insert(txn, {"k": 2, "v": "b"})
        key1 = table.codec.encode_key(1)
        leaf = table.btree.search_leaf(key1)
        assert not leaf.head(key1).is_timestamped   # not yet
        ts = db.commit(txn)
        assert leaf.head(key1).is_timestamped       # stamped by commit
        assert leaf.head(key1).timestamp == ts

    def test_stamp_ops_logged_per_version(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "a"})
        # A re-update of the transaction's own uncommitted version collapses
        # in place (one version per record per transaction), so k=1 still
        # contributes exactly one stamped version.
        table.update(txn, 1, {"v": "b"})
        table.insert(txn, {"k": 2, "v": "c"})
        db.commit(txn)
        stamps = [r for r in db.log.records_from(0) if isinstance(r, StampOp)]
        assert len(stamps) == 2
        assert all(s.tid == txn.tid for s in stamps)

    def test_no_ptt_entries_ever(self, db, table):
        for i in range(5):
            with db.transaction() as txn:
                table.insert(txn, {"k": i, "v": "x"})
        assert len(db.ptt) == 0
        assert db.tsmgr.stats.ptt_inserts == 0

    def test_commit_revisit_counted_per_page(self, db, table):
        txn = db.begin()
        for i in range(4):
            table.insert(txn, {"k": i, "v": "x"})
        before = db.tsmgr.stats.commit_revisit_pages
        db.commit(txn)
        assert db.tsmgr.stats.commit_revisit_pages == before + 1  # one leaf

    def test_abort_discards_pending_stamp_work(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "doomed"})
        db.abort(txn)
        assert db.tsmgr.stats.stamps == 0
        with db.transaction() as reader:
            assert table.read(reader, 1) is None

    def test_garbage_collect_is_a_noop(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        assert db.tsmgr.garbage_collect(10**9) == 0

    def test_versions_stamped_after_key_split(self, db, table):
        """The commit revisit relocates records moved by a split mid-txn."""
        txn = db.begin()
        for i in range(400):
            table.insert(txn, {"k": i, "v": "x" * 60})
        assert table.btree.stats.key_splits >= 1
        db.commit(txn)
        for leaf in table.btree.leaves():
            assert not leaf.has_unstamped_records()


class TestEagerTemporalQueries:
    def test_asof_works_identically(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "old"})
        mark = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "new"})
        assert table.read_as_of(mark, 1)["v"] == "old"
        assert len(table.history(1)) == 2
