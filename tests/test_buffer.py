"""Tests for the buffer pool: caching, dirty tracking, hooks, latching."""

from __future__ import annotations

import pytest

from repro.errors import BufferPoolError, LatchError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion


@pytest.fixture
def disk():
    return InMemoryDisk()


@pytest.fixture
def pool(disk):
    return BufferPool(disk, capacity=4)


def new_data_page(pool: BufferPool) -> DataPage:
    return pool.new_page(lambda pid: DataPage(pid))


class TestCaching:
    def test_new_page_is_cached_and_dirty(self, pool):
        page = new_data_page(pool)
        assert pool.contains(page.page_id)
        assert pool.is_dirty(page.page_id)

    def test_get_page_hits_cache(self, pool):
        page = new_data_page(pool)
        again = pool.get_page(page.page_id)
        assert again is page
        assert pool.stats.hits == 1

    def test_miss_reads_from_disk(self, pool, disk):
        page = new_data_page(pool)
        pid = page.page_id
        pool.flush_all()
        pool.discard_all()
        fetched = pool.get_page(pid)
        assert fetched.page_id == pid
        assert pool.stats.misses == 1

    def test_eviction_respects_capacity(self, pool):
        for _ in range(10):
            new_data_page(pool)
        assert len(pool) <= 4
        assert pool.stats.evictions >= 6

    def test_eviction_flushes_dirty_pages(self, pool, disk):
        pages = [new_data_page(pool) for _ in range(4)]
        first = pages[0]
        first.insert_version(RecordVersion.new(b"k", b"v", 1))
        new_data_page(pool)  # evicts `first`
        raw = disk.read_page(first.page_id)
        assert raw == first.to_bytes()

    def test_pinned_pages_survive_eviction(self, pool):
        page = new_data_page(pool)
        pool.pin(page.page_id)
        for _ in range(8):
            new_data_page(pool)
        assert pool.contains(page.page_id)
        pool.unpin(page.page_id)

    def test_all_pinned_pool_exhausted(self, disk):
        pool = BufferPool(disk, capacity=4)
        for _ in range(4):
            page = new_data_page(pool)
            pool.pin(page.page_id)
        with pytest.raises(BufferPoolError):
            new_data_page(pool)


class TestDirtyTracking:
    def test_flush_clears_dirty(self, pool):
        page = new_data_page(pool)
        pool.flush_page(page.page_id)
        assert not pool.is_dirty(page.page_id)

    def test_dirty_page_table_reports_rec_lsns(self, pool):
        page = new_data_page(pool)
        pool.flush_page(page.page_id)
        page.lsn = 500
        pool.mark_dirty(page.page_id, 123)
        assert pool.dirty_page_table() == {page.page_id: 123}

    def test_rec_lsn_sticks_to_first_dirtying(self, pool):
        page = new_data_page(pool)
        pool.flush_page(page.page_id)
        pool.mark_dirty(page.page_id, 100)
        pool.mark_dirty(page.page_id, 200)
        assert pool.dirty_page_table()[page.page_id] == 100

    def test_flush_all(self, pool):
        for _ in range(3):
            new_data_page(pool)
        pool.flush_all()
        assert pool.dirty_page_table() == {}


class TestHooks:
    def test_pre_flush_hook_runs_before_serialization(self, pool, disk):
        page = new_data_page(pool)
        page.insert_version(RecordVersion.new(b"k", b"v", 5))

        def hook(p):
            if isinstance(p, DataPage) and p.head(b"k") is not None:
                from repro.clock import Timestamp

                head = p.head(b"k")
                if not head.is_timestamped:
                    head.stamp(Timestamp(777, 0))

        pool.pre_flush_hooks.append(hook)
        pool.flush_page(page.page_id)
        from repro.storage.page import decode_page

        decoded = decode_page(disk.read_page(page.page_id))
        assert decoded.head(b"k").is_timestamped

    def test_wal_rule_forces_log_before_write(self, pool):
        forced = []
        pool.log_force = forced.append
        page = new_data_page(pool)
        page.lsn = 42
        pool.flush_page(page.page_id)
        assert forced == [42]


class TestLatching:
    def test_shared_latches_stack(self, pool):
        page = new_data_page(pool)
        pool.latch_shared(page.page_id)
        pool.latch_shared(page.page_id)
        pool.unlatch(page.page_id)
        pool.unlatch(page.page_id)

    def test_exclusive_conflicts_with_shared(self, pool):
        page = new_data_page(pool)
        pool.latch_shared(page.page_id)
        with pytest.raises(LatchError):
            pool.latch_exclusive(page.page_id)
        pool.unlatch(page.page_id)

    def test_shared_conflicts_with_exclusive(self, pool):
        page = new_data_page(pool)
        pool.latch_exclusive(page.page_id)
        with pytest.raises(LatchError):
            pool.latch_shared(page.page_id)
        pool.unlatch(page.page_id)

    def test_unlatch_without_latch_fails(self, pool):
        page = new_data_page(pool)
        with pytest.raises(LatchError):
            pool.unlatch(page.page_id)

    def test_latched_pages_not_evicted(self, pool):
        page = new_data_page(pool)
        pool.latch_exclusive(page.page_id)
        for _ in range(8):
            new_data_page(pool)
        assert pool.contains(page.page_id)
        pool.unlatch(page.page_id)


class TestReplacePage:
    def test_replace_swaps_object(self, pool):
        page = new_data_page(pool)
        rebuilt = DataPage(page.page_id)
        rebuilt.insert_version(RecordVersion.new(b"z", b"1", 1))
        pool.replace_page(rebuilt)
        assert pool.get_page(page.page_id) is rebuilt
        assert pool.is_dirty(page.page_id)

    def test_replace_unknown_page_fails(self, pool):
        with pytest.raises(BufferPoolError):
            pool.replace_page(DataPage(424242))

    def test_replace_uncached_but_existing_page(self, pool, disk):
        page = new_data_page(pool)
        pid = page.page_id
        pool.flush_all()
        pool.discard_all()
        rebuilt = DataPage(pid)
        pool.replace_page(rebuilt)
        assert pool.get_page(pid) is rebuilt


class TestCrashSimulation:
    def test_discard_loses_unflushed_changes(self, pool, disk):
        page = new_data_page(pool)
        pid = page.page_id
        pool.flush_page(pid)
        page.insert_version(RecordVersion.new(b"k", b"v", 1))
        pool.mark_dirty(pid)
        pool.discard_all()
        fetched = pool.get_page(pid)
        assert fetched.head(b"k") is None
