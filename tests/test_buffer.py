"""Tests for the buffer pool: caching, dirty tracking, hooks, latching."""

from __future__ import annotations

import pytest

from repro.errors import BufferExhaustedError, BufferPoolError, LatchError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion


@pytest.fixture
def disk():
    return InMemoryDisk()


@pytest.fixture
def pool(disk):
    return BufferPool(disk, capacity=4)


def new_data_page(pool: BufferPool) -> DataPage:
    return pool.new_page(lambda pid: DataPage(pid))


class TestCaching:
    def test_new_page_is_cached_and_dirty(self, pool):
        page = new_data_page(pool)
        assert pool.contains(page.page_id)
        assert pool.is_dirty(page.page_id)

    def test_get_page_hits_cache(self, pool):
        page = new_data_page(pool)
        again = pool.get_page(page.page_id)
        assert again is page
        assert pool.stats.hits == 1

    def test_miss_reads_from_disk(self, pool, disk):
        page = new_data_page(pool)
        pid = page.page_id
        pool.flush_all()
        pool.discard_all()
        fetched = pool.get_page(pid)
        assert fetched.page_id == pid
        assert pool.stats.misses == 1

    def test_eviction_respects_capacity(self, pool):
        for _ in range(10):
            new_data_page(pool)
        assert len(pool) <= 4
        assert pool.stats.evictions >= 6

    def test_eviction_flushes_dirty_pages(self, pool, disk):
        pages = [new_data_page(pool) for _ in range(4)]
        first = pages[0]
        first.insert_version(RecordVersion.new(b"k", b"v", 1))
        new_data_page(pool)  # evicts `first`
        raw = disk.read_page(first.page_id)
        assert raw == first.to_bytes()

    def test_pinned_pages_survive_eviction(self, pool):
        page = new_data_page(pool)
        pool.pin(page.page_id)
        for _ in range(8):
            new_data_page(pool)
        assert pool.contains(page.page_id)
        pool.unpin(page.page_id)

    def test_all_pinned_pool_exhausted(self, disk):
        pool = BufferPool(disk, capacity=4)
        for _ in range(4):
            page = new_data_page(pool)
            pool.pin(page.page_id)
        with pytest.raises(BufferPoolError):
            new_data_page(pool)


class TestDirtyTracking:
    def test_flush_clears_dirty(self, pool):
        page = new_data_page(pool)
        pool.flush_page(page.page_id)
        assert not pool.is_dirty(page.page_id)

    def test_dirty_page_table_reports_rec_lsns(self, pool):
        page = new_data_page(pool)
        pool.flush_page(page.page_id)
        page.lsn = 500
        pool.mark_dirty(page.page_id, 123)
        assert pool.dirty_page_table() == {page.page_id: 123}

    def test_rec_lsn_sticks_to_first_dirtying(self, pool):
        page = new_data_page(pool)
        pool.flush_page(page.page_id)
        pool.mark_dirty(page.page_id, 100)
        pool.mark_dirty(page.page_id, 200)
        assert pool.dirty_page_table()[page.page_id] == 100

    def test_flush_all(self, pool):
        for _ in range(3):
            new_data_page(pool)
        pool.flush_all()
        assert pool.dirty_page_table() == {}


class TestHooks:
    def test_pre_flush_hook_runs_before_serialization(self, pool, disk):
        page = new_data_page(pool)
        page.insert_version(RecordVersion.new(b"k", b"v", 5))

        def hook(p):
            if isinstance(p, DataPage) and p.head(b"k") is not None:
                from repro.clock import Timestamp

                head = p.head(b"k")
                if not head.is_timestamped:
                    head.stamp(Timestamp(777, 0))

        pool.pre_flush_hooks.append(hook)
        pool.flush_page(page.page_id)
        from repro.storage.page import decode_page

        decoded = decode_page(disk.read_page(page.page_id))
        assert decoded.head(b"k").is_timestamped

    def test_wal_rule_forces_log_before_write(self, pool):
        forced = []
        pool.log_force = forced.append
        page = new_data_page(pool)
        page.lsn = 42
        pool.flush_page(page.page_id)
        assert forced == [42]


class TestLatching:
    def test_shared_latches_stack(self, pool):
        page = new_data_page(pool)
        pool.latch_shared(page.page_id)
        pool.latch_shared(page.page_id)
        pool.unlatch(page.page_id)
        pool.unlatch(page.page_id)

    def test_exclusive_conflicts_with_shared(self, pool):
        page = new_data_page(pool)
        pool.latch_shared(page.page_id)
        with pytest.raises(LatchError):
            pool.latch_exclusive(page.page_id)
        pool.unlatch(page.page_id)

    def test_shared_conflicts_with_exclusive(self, pool):
        page = new_data_page(pool)
        pool.latch_exclusive(page.page_id)
        with pytest.raises(LatchError):
            pool.latch_shared(page.page_id)
        pool.unlatch(page.page_id)

    def test_unlatch_without_latch_fails(self, pool):
        page = new_data_page(pool)
        with pytest.raises(LatchError):
            pool.unlatch(page.page_id)

    def test_latched_pages_not_evicted(self, pool):
        page = new_data_page(pool)
        pool.latch_exclusive(page.page_id)
        for _ in range(8):
            new_data_page(pool)
        assert pool.contains(page.page_id)
        pool.unlatch(page.page_id)


class TestReplacePage:
    def test_replace_swaps_object(self, pool):
        page = new_data_page(pool)
        rebuilt = DataPage(page.page_id)
        rebuilt.insert_version(RecordVersion.new(b"z", b"1", 1))
        pool.replace_page(rebuilt)
        assert pool.get_page(page.page_id) is rebuilt
        assert pool.is_dirty(page.page_id)

    def test_replace_unknown_page_fails(self, pool):
        with pytest.raises(BufferPoolError):
            pool.replace_page(DataPage(424242))

    def test_replace_uncached_but_existing_page(self, pool, disk):
        page = new_data_page(pool)
        pid = page.page_id
        pool.flush_all()
        pool.discard_all()
        rebuilt = DataPage(pid)
        pool.replace_page(rebuilt)
        assert pool.get_page(pid) is rebuilt


class TestCrashSimulation:
    def test_discard_loses_unflushed_changes(self, pool, disk):
        page = new_data_page(pool)
        pid = page.page_id
        pool.flush_page(pid)
        page.insert_version(RecordVersion.new(b"k", b"v", 1))
        pool.mark_dirty(pid)
        pool.discard_all()
        fetched = pool.get_page(pid)
        assert fetched.head(b"k") is None


# -- PR 6: eviction policies, batched flushing, read-ahead ---------------------


def fill_disk_pages(disk, count: int, start_key: int = 0) -> list[int]:
    """Write ``count`` standalone data pages straight to disk; return ids."""
    pids = []
    for i in range(count):
        pid = disk.allocate()
        page = DataPage(pid)
        page.insert_version(
            RecordVersion.new(str(start_key + i).encode(), b"v", 1)
        )
        disk.write_page(pid, page.to_bytes())
        pids.append(pid)
    return pids


class TestBufferExhausted:
    def test_exhaustion_is_typed_with_breakdown(self, pool):
        pages = [new_data_page(pool) for _ in range(4)]
        for page in pages[:3]:
            pool.pin(page.page_id)
        pool.latch_exclusive(pages[3].page_id)
        with pytest.raises(BufferExhaustedError) as exc_info:
            new_data_page(pool)
        err = exc_info.value
        assert err.capacity == 4
        assert err.pinned == 3
        assert err.latched == 1
        assert isinstance(err, BufferPoolError)  # callers catching the
        # broad pool error keep working

    def test_exhaustion_for_every_policy(self, disk):
        for eviction in ("lru", "2q", "clock"):
            pool = BufferPool(disk, capacity=4, eviction=eviction)
            for _ in range(4):
                pool.pin(new_data_page(pool).page_id)
            with pytest.raises(BufferExhaustedError):
                new_data_page(pool)

    def test_unknown_policy_rejected(self, disk):
        with pytest.raises(ValueError):
            BufferPool(disk, capacity=8, eviction="arc")


class TestTwoQPolicy:
    def test_one_touch_pages_do_not_displace_reaccessed_ones(self, disk):
        # Pool of 8: kin=1, kout=4.  Pages promoted via ghost re-fault land
        # in Am and survive a scan of one-touch pages.
        pool = BufferPool(disk, capacity=8, eviction="2q")
        hot = fill_disk_pages(disk, 2)
        scan = fill_disk_pages(disk, 20, start_key=100)
        # First touch: hot pages enter probation, get evicted, ghosted.
        for pid in hot:
            pool.get_page(pid)
        for pid in scan[:8]:
            pool.get_page(pid)
        # Re-fault while ghosted: promoted straight to Am.
        for pid in hot:
            pool.get_page(pid)
        # A long one-touch scan now churns probation only.
        for pid in scan[8:]:
            pool.get_page(pid)
        assert all(pool.contains(pid) for pid in hot)

    def test_reaccess_in_probation_does_not_promote(self, disk):
        pool = BufferPool(disk, capacity=8, eviction="2q")
        pids = fill_disk_pages(disk, 12)
        first = pids[0]
        pool.get_page(first)
        pool.get_page(first)  # hit while still in A1in: no promotion
        for pid in pids[1:]:
            pool.get_page(pid)
        # Enough one-touch traffic flushed it out of probation despite the
        # second access — the scan-resistance property 2Q is for.
        assert not pool.contains(first)


class TestClockPolicy:
    def test_referenced_page_survives_one_lap(self, disk):
        pool = BufferPool(disk, capacity=4, eviction="clock")
        pids = fill_disk_pages(disk, 8)
        for pid in pids[:4]:
            pool.get_page(pid)
        # First eviction laps the ring: all admit-time bits get cleared and
        # the oldest frame goes.  Now reference bits are meaningful.
        pool.get_page(pids[4])
        assert not pool.contains(pids[0])
        pool.get_page(pids[1])          # second chance for pids[1]
        pool.get_page(pids[5])          # hand skips pids[1], evicts pids[2]
        assert pool.contains(pids[1])
        assert not pool.contains(pids[2])

    def test_pinned_frames_skipped_without_losing_reference(self, disk):
        pool = BufferPool(disk, capacity=4, eviction="clock")
        pids = fill_disk_pages(disk, 8)
        for pid in pids[:4]:
            pool.get_page(pid)
        pool.pin(pids[0])
        before = pool.stats.evict_scan_skips
        pool.get_page(pids[4])
        assert pool.contains(pids[0])
        assert pool.stats.evict_scan_skips > before


class TestBatchedFlush:
    def _dirty_pool(self, disk, *, flush_batch, count=6):
        pool = BufferPool(disk, capacity=16, flush_batch=flush_batch)
        forces = []
        pool.log_force = forces.append
        pages = [new_data_page(pool) for _ in range(count)]
        for i, page in enumerate(pages):
            page.lsn = i + 1
            pool.mark_dirty(page.page_id, i + 1)
        return pool, pages, forces

    def test_flush_all_batches_with_one_force_per_batch(self, disk):
        pool, pages, forces = self._dirty_pool(disk, flush_batch=4)
        pool.flush_all()
        assert pool.stats.flush_batches == 2           # 6 pages / batch of 4
        assert len(forces) == 2                        # one force per batch
        assert forces[0] == max(p.lsn for p in pages[:4])
        assert not any(pool.is_dirty(p.page_id) for p in pages)

    def test_batch_writes_in_page_id_order_and_counts_coalesced(self, disk):
        pool, pages, _ = self._dirty_pool(disk, flush_batch=8)
        order = []
        real_write = disk.write_page
        disk.write_page = lambda pid, raw: (order.append(pid),
                                            real_write(pid, raw))[1]
        pool.flush_all()
        assert order == sorted(order)
        # new_page allocates consecutively, so every write after the first
        # lands adjacent to its predecessor.
        assert pool.stats.flush_coalesced_writes == len(pages) - 1

    def test_dirty_eviction_piggybacks_cold_dirty_companions(self, disk):
        pool = BufferPool(disk, capacity=4, flush_batch=4)
        pages = [new_data_page(pool) for _ in range(4)]
        assert all(pool.is_dirty(p.page_id) for p in pages)
        new_data_page(pool)  # one eviction...
        assert pool.stats.dirty_evictions == 1
        assert pool.stats.flush_batches == 1
        # ...but the batch wrote the victim AND cold companions, leaving
        # them cached-and-clean: their own eviction later costs nothing.
        assert pool.stats.page_flushes >= 2

    def test_flushbatch_failpoints_fire(self, disk):
        from repro.faults.failpoints import FailpointRegistry, installed

        pool, _, _ = self._dirty_pool(disk, flush_batch=4)
        reg = FailpointRegistry()
        reg.trace_on()
        with installed(reg):
            pool.flush_all()
        trace = reg.trace or []
        assert "buffer.flushbatch.submit" in trace
        assert "buffer.flushbatch.write" in trace
        assert "buffer.flushbatch.done" in trace
        assert trace.index("buffer.flushbatch.submit") < trace.index(
            "buffer.flushbatch.write"
        )

    def test_unbatched_default_uses_per_page_path(self, disk):
        pool, _, forces = self._dirty_pool(disk, flush_batch=0)
        pool.flush_all()
        assert pool.stats.flush_batches == 0
        assert len(forces) == 6                        # one force per page


class TestReadAhead:
    def test_negative_read_ahead_rejected(self, disk):
        with pytest.raises(ValueError):
            BufferPool(disk, capacity=8, read_ahead=-1)

    def test_sequential_misses_trigger_prefetch(self, disk):
        pids = fill_disk_pages(disk, 32)
        pool = BufferPool(disk, capacity=8, read_ahead=4)
        pool.get_page(pids[0])
        pool.get_page(pids[1])  # gap 1: scan detected, window staged
        assert pool.stats.prefetches > 0
        before = pool.disk.stats.reads
        pool.get_page(pids[2])  # served from the staging ring
        assert pool.stats.prefetch_hits == 1
        assert pool.disk.stats.reads == before

    def test_random_misses_never_prefetch(self, disk):
        pids = fill_disk_pages(disk, 32)
        pool = BufferPool(disk, capacity=8, read_ahead=4)
        for pid in (pids[0], pids[20], pids[5], pids[28]):
            pool.get_page(pid)
        assert pool.stats.prefetches == 0

    def test_disabled_by_default(self, disk):
        pids = fill_disk_pages(disk, 8)
        pool = BufferPool(disk, capacity=8)
        for pid in pids:
            pool.get_page(pid)
        assert pool.stats.prefetches == 0
        assert not pool._staged

    def test_admit_supersedes_staged_copy(self, disk):
        # A page admitted (and possibly rewritten) after being staged must
        # not be resurrected from the speculative copy on a later miss.
        pids = fill_disk_pages(disk, 32)
        pool = BufferPool(disk, capacity=8, read_ahead=4)
        pool.get_page(pids[0])
        pool.get_page(pids[1])            # stages pids[2..5]
        assert pids[2] in pool._staged
        page = pool.get_page(pids[2])     # staged copy becomes THE frame
        assert pids[2] not in pool._staged
        page.insert_version(RecordVersion.new(b"new", b"x", 9))
        pool.mark_dirty(page.page_id)
        pool.flush_page(page.page_id)
        pool.discard_all()
        assert pool.get_page(pids[2]).head(b"new") is not None

    def test_window_stops_at_unreadable_page(self, disk):
        pids = fill_disk_pages(disk, 4)
        hole = disk.allocate()            # allocated, never written
        more = fill_disk_pages(disk, 4, start_key=50)
        pool = BufferPool(disk, capacity=8, read_ahead=8)
        pool.get_page(pids[2])
        pool.get_page(pids[3])            # window hits the hole and stops
        assert hole not in pool._staged
        assert all(pid not in pool._staged for pid in more)
        # The demand path still reads past the hole normally.
        assert pool.get_page(more[0]).page_id == more[0]


class TestMarkDirtyPage:
    def test_readmits_evicted_page_object(self, disk):
        pool = BufferPool(disk, capacity=4)
        page = new_data_page(pool)
        for _ in range(6):
            new_data_page(pool)           # evicts `page`
        assert not pool.contains(page.page_id)
        page.insert_version(RecordVersion.new(b"k2", b"v2", 3))
        pool.mark_dirty_page(page, 3)     # re-admits the mutated object
        assert pool.contains(page.page_id)
        assert pool.get_page(page.page_id) is page
        assert pool.is_dirty(page.page_id)

    def test_plain_mark_dirty_still_raises_for_uncached(self, disk):
        pool = BufferPool(disk, capacity=4)
        page = new_data_page(pool)
        for _ in range(6):
            new_data_page(pool)
        with pytest.raises(BufferPoolError):
            pool.mark_dirty(page.page_id)
