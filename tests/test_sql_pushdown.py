"""Tests for WHERE-clause key-range pushdown in the SQL executor."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB
from repro.sql import Session
from repro.sql.executor import _key_range
from repro.sql.parser import parse_statement


def where_of(sql: str):
    return parse_statement(sql).where


class TestKeyRangeExtraction:
    def test_two_sided_range(self):
        where = where_of("SELECT * FROM t WHERE k >= 5 AND k <= 10")
        assert _key_range(where, "k") == (5, 10)

    def test_one_sided(self):
        assert _key_range(where_of("SELECT * FROM t WHERE k > 7"), "k") \
            == (7, None)
        assert _key_range(where_of("SELECT * FROM t WHERE k < 7"), "k") \
            == (None, 7)

    def test_equality_collapses(self):
        where = where_of("SELECT * FROM t WHERE k = 3 AND v = 'x'")
        assert _key_range(where, "k") == (3, 3)

    def test_tightest_bounds_win(self):
        where = where_of("SELECT * FROM t WHERE k > 2 AND k > 8 AND k < 20")
        assert _key_range(where, "k") == (8, 20)

    def test_or_disables_pushdown(self):
        where = where_of("SELECT * FROM t WHERE k > 5 OR v = 'x'")
        assert _key_range(where, "k") == (None, None)

    def test_not_disables_pushdown(self):
        where = where_of("SELECT * FROM t WHERE NOT k < 5")
        assert _key_range(where, "k") == (None, None)

    def test_other_columns_ignored(self):
        where = where_of("SELECT * FROM t WHERE v > 'a' AND k <= 4")
        assert _key_range(where, "k") == (None, 4)


class TestPushdownExecution:
    @pytest.fixture
    def session(self):
        db = ImmortalDB(buffer_pages=256)
        session = Session(db)
        session.execute(
            "CREATE IMMORTAL TABLE t (k INT PRIMARY KEY, v TEXT)"
        )
        session.execute("BEGIN TRAN")
        for k in range(300):
            session.execute(f"INSERT INTO t VALUES ({k}, 'row{k}xxxxxxxxxx')")
        session.execute("COMMIT TRAN")
        return session

    def test_range_select_correct(self, session):
        rows = session.execute(
            "SELECT k FROM t WHERE k >= 100 AND k < 110 ORDER BY k"
        ).rows
        assert [r["k"] for r in rows] == list(range(100, 110))

    def test_range_update_and_delete(self, session):
        assert session.execute(
            "UPDATE t SET v = 'z' WHERE k >= 290 AND k <= 294"
        ).rowcount == 5
        assert session.execute(
            "DELETE FROM t WHERE k > 294"
        ).rowcount == 5
        rows = session.execute("SELECT * FROM t WHERE k >= 289").rows
        assert len(rows) == 6  # 289..294

    def test_strict_bounds_filtered_exactly(self, session):
        rows = session.execute(
            "SELECT k FROM t WHERE k > 5 AND k < 8 ORDER BY k"
        ).rows
        assert [r["k"] for r in rows] == [6, 7]

    def test_pushdown_matches_full_scan_semantics(self, session):
        narrow = session.execute(
            "SELECT * FROM t WHERE k >= 50 AND k <= 60 AND v <> 'row55xxxxxxxxxx'"
        ).rows
        wide = [
            r for r in session.execute("SELECT * FROM t").rows
            if 50 <= r["k"] <= 60 and r["v"] != "row55xxxxxxxxxx"
        ]
        assert narrow == wide
