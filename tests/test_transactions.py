"""Tests for transaction management: commit order, rollback, late choice."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB, TxnMode
from repro.errors import (
    KeyNotFoundError,
    LockConflictError,
    ReadOnlyTransactionError,
    TransactionStateError,
)


@pytest.fixture
def db():
    return ImmortalDB(buffer_pages=64)


@pytest.fixture
def table(db):
    return db.create_table(
        "t", columns=[("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", immortal=True,
    )


class TestCommit:
    def test_commit_returns_timestamp(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "a"})
        ts = db.commit(txn)
        assert ts is not None

    def test_timestamp_order_equals_commit_order(self, db, table):
        """The paper's late-choice guarantee (Section 2.1)."""
        t1 = db.begin()
        t2 = db.begin()
        table.insert(t1, {"k": 1, "v": "a"})
        table.insert(t2, {"k": 2, "v": "b"})
        # t2 commits first even though it began second.
        ts2 = db.commit(t2)
        ts1 = db.commit(t1)
        assert ts2 < ts1

    def test_read_only_commit_has_no_timestamp(self, db, table):
        txn = db.begin()
        assert table.read(txn, 1) is None
        assert db.commit(txn) is None

    def test_read_only_commit_writes_no_log(self, db, table):
        before = db.log.stats.appends
        txn = db.begin()
        table.read(txn, 1)
        db.commit(txn)
        assert db.log.stats.appends == before

    def test_commit_forces_the_log(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "a"})
        db.commit(txn)
        assert db.log.flushed_lsn == db.log.end_lsn

    def test_operations_after_commit_rejected(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "a"})
        db.commit(txn)
        with pytest.raises(TransactionStateError):
            table.insert(txn, {"k": 2, "v": "b"})

    def test_commit_releases_locks(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "a"})
        db.commit(txn)
        assert db.locks.locks_held(txn.tid) == 0


class TestRollback:
    def test_abort_removes_inserted_record(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "gone"})
        db.abort(txn)
        with db.transaction() as reader:
            assert table.read(reader, 1) is None

    def test_abort_restores_previous_version(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "original"})
        txn = db.begin()
        table.update(txn, 1, {"v": "doomed"})
        table.update(txn, 1, {"v": "also doomed"})
        db.abort(txn)
        with db.transaction() as reader:
            assert table.read(reader, 1)["v"] == "original"

    def test_abort_undoes_delete(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "keep"})
        txn = db.begin()
        table.delete(txn, 1)
        db.abort(txn)
        with db.transaction() as reader:
            assert table.read(reader, 1)["v"] == "keep"

    def test_abort_writes_clrs_and_abort_end(self, db, table):
        from repro.wal.records import AbortEnd, CompensationRecord

        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "x"})
        table.insert(txn, {"k": 2, "v": "y"})
        db.abort(txn)
        records = list(db.log.records_from(0))
        clrs = [r for r in records if isinstance(r, CompensationRecord)]
        ends = [r for r in records if isinstance(r, AbortEnd)]
        assert len(clrs) == 2
        assert len(ends) == 1

    def test_aborted_txn_leaves_no_trace_in_history(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "v1"})
        txn = db.begin()
        table.update(txn, 1, {"v": "aborted"})
        db.abort(txn)
        assert len(table.history(1)) == 1

    def test_context_manager_aborts_on_exception(self, db, table):
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                table.insert(txn, {"k": 5, "v": "x"})
                raise RuntimeError("boom")
        with db.transaction() as reader:
            assert table.read(reader, 5) is None


class TestIsolationSerializable:
    def test_write_write_conflict_detected(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        t1 = db.begin()
        t2 = db.begin()
        table.update(t1, 1, {"v": "t1"})
        with pytest.raises(LockConflictError):
            table.update(t2, 1, {"v": "t2"})
        db.commit(t1)
        db.abort(t2)

    def test_read_write_conflict_detected(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        reader = db.begin()
        table.read(reader, 1)
        writer = db.begin()
        with pytest.raises(LockConflictError):
            table.update(writer, 1, {"v": "nope"})
        db.commit(reader)
        db.abort(writer)

    def test_own_writes_visible_before_commit(self, db, table):
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "mine"})
        assert table.read(txn, 1)["v"] == "mine"
        table.update(txn, 1, {"v": "mine-2"})
        assert table.read(txn, 1)["v"] == "mine-2"
        db.commit(txn)


class TestAsOfTransactions:
    def test_as_of_transactions_are_read_only(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        historical = db.begin(as_of=db.now())
        with pytest.raises(ReadOnlyTransactionError):
            table.insert(historical, {"k": 2, "v": "b"})
        db.commit(historical)

    def test_as_of_requires_timestamp(self, db):
        with pytest.raises(TransactionStateError):
            db.txn_mgr.begin(TxnMode.AS_OF)

    def test_as_of_sees_past_state(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "old"})
        past = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "new"})
        with db.transaction(as_of=past) as historical:
            assert table.read(historical, 1)["v"] == "old"


class TestTidManagement:
    def test_tids_ascend(self, db):
        t1 = db.begin()
        t2 = db.begin()
        assert t2.tid > t1.tid
        db.commit(t1)
        db.commit(t2)

    def test_tid_floor_after_recovery(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        used = txn.tid
        db.crash_and_recover()
        fresh = db.begin()
        assert fresh.tid > used
        db.commit(fresh)
