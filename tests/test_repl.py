"""Tests for the interactive SQL shell (driven via stdin)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.sql.executor import Result
from repro.sql.repl import render_rows


class TestRenderRows:
    def test_message_only(self):
        assert render_rows(Result(message="CREATE TABLE t")) == "CREATE TABLE t"

    def test_rowcount_fallback(self):
        assert "3 row(s)" in render_rows(Result(rowcount=3))

    def test_table_rendering(self):
        out = render_rows(
            Result(rows=[{"k": 1, "v": "abc"}, {"k": 22, "v": None}])
        )
        assert "k " in out and "v" in out
        assert "22" in out and "None" in out
        assert "(2 row(s))" in out


def run_repl(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.sql.repl", *args],
        input=script,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestReplEndToEnd:
    def test_full_session(self):
        out = run_repl(
            "CREATE IMMORTAL TABLE t (k INT PRIMARY KEY, v TEXT);\n"
            "INSERT INTO t VALUES (1, 'one'), (2, 'two');\n"
            "SELECT * FROM t ORDER BY k;\n"
            "\\t\n"
            "\\check\n"
            "\\q\n"
        )
        assert "CREATE IMMORTAL TABLE t" in out
        assert "one" in out and "two" in out
        assert "(immortal, key=k)" in out
        assert "CLEAN" in out

    def test_multiline_statement(self):
        out = run_repl(
            "CREATE TABLE t (k INT PRIMARY KEY,\n"
            "v TEXT);\n"
            "INSERT INTO t\n"
            "VALUES (5, 'hello');\n"
            "SELECT v FROM t;\n"
            "\\q\n"
        )
        assert "hello" in out

    def test_error_does_not_kill_session(self):
        out = run_repl(
            "SELECT * FROM missing;\n"
            "CREATE TABLE t (k INT PRIMARY KEY, v TEXT);\n"
            "\\q\n"
        )
        assert "error:" in out
        assert "CREATE TABLE t" in out

    def test_clock_meta_commands_and_asof(self):
        out = run_repl(
            "CREATE IMMORTAL TABLE t (k INT PRIMARY KEY, v TEXT);\n"
            "INSERT INTO t VALUES (1, 'past');\n"
            "\\advance 120000\n"
            "UPDATE t SET v = 'present' WHERE k = 1;\n"
            "SELECT * FROM t AS OF '2006-01-01 00:01:00';\n"
            "\\q\n"
        )
        assert "past" in out

    def test_file_backed_database_persists(self, tmp_path):
        path = str(tmp_path / "repl.db")
        run_repl(
            "CREATE TABLE t (k INT PRIMARY KEY, v TEXT);\n"
            "INSERT INTO t VALUES (1, 'durable');\n"
            "\\q\n",
            path,
        )
        out = run_repl("SELECT * FROM t;\n\\q\n", path)
        assert "durable" in out
