"""Tests for the road network and moving-objects workload generator."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.workloads.generic import UpdateStream, zipf_keys
from repro.workloads.moving_objects import (
    MovingObjectWorkload,
    REPORT_INTERVAL_MS,
)
from repro.workloads.roadnet import RoadNetwork


class TestRoadNetwork:
    def test_network_is_connected(self):
        net = RoadNetwork(rows=10, cols=10, seed=1)
        assert nx.is_connected(net.graph)

    def test_deterministic_under_seed(self):
        a = RoadNetwork(rows=8, cols=8, seed=5)
        b = RoadNetwork(rows=8, cols=8, seed=5)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_edges_removed(self):
        full = 2 * 10 * 10 - 10 - 10  # grid edge count
        net = RoadNetwork(rows=10, cols=10, removal_fraction=0.1, seed=2)
        assert net.graph.number_of_edges() < full

    def test_shortest_path_respects_lengths(self):
        net = RoadNetwork(rows=6, cols=6, seed=3)
        path = net.shortest_path((0, 0), (5, 5))
        assert path[0] == (0, 0) and path[-1] == (5, 5)
        assert net.path_length(path) > 0

    def test_random_trip_has_min_hops(self):
        net = RoadNetwork(rows=8, cols=8, seed=4)
        rng = random.Random(0)
        _, _, path = net.random_trip(rng, min_hops=4)
        assert len(path) > 4

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            RoadNetwork(rows=1, cols=5)


class TestMovingObjectWorkload:
    def test_every_object_inserts_before_updating(self):
        workload = MovingObjectWorkload(objects=20, seed=1)
        seen: set[int] = set()
        for event in workload.events(max_events=500):
            if event.kind == "update":
                assert event.oid in seen
            else:
                assert event.oid not in seen
                seen.add(event.oid)

    def test_events_are_time_ordered(self):
        workload = MovingObjectWorkload(objects=30, seed=2)
        times = [e.time_ms for e in workload.events(max_events=800)]
        assert times == sorted(times)

    def test_deterministic_under_seed(self):
        a = list(MovingObjectWorkload(objects=10, seed=3).events(max_events=200))
        b = list(MovingObjectWorkload(objects=10, seed=3).events(max_events=200))
        assert a == b

    def test_variable_update_counts(self):
        """'Not all moving objects have the same number of updates.'"""
        workload = MovingObjectWorkload(objects=40, seed=4)
        counts: dict[int, int] = {}
        for event in workload.events():
            if event.kind == "update":
                counts[event.oid] = counts.get(event.oid, 0) + 1
        assert len(set(counts.values())) > 3

    def test_bounded_stream_stops_exactly(self):
        workload = MovingObjectWorkload(objects=10, seed=5)
        assert len(list(workload.events(max_events=123))) == 123

    def test_unbounded_stream_terminates(self):
        """Without a cap, every object eventually reaches its destination."""
        workload = MovingObjectWorkload(objects=10, seed=6)
        events = list(workload.events())
        assert events  # finite
        assert all(e.kind in ("insert", "update") for e in events)

    def test_capped_stream_sustains_any_length(self):
        """The paper's 32K-transaction runs need objects to keep moving."""
        workload = MovingObjectWorkload(objects=5, seed=7)
        events = list(workload.events(max_events=3000))
        assert len(events) == 3000

    def test_transaction_mix(self):
        workload = MovingObjectWorkload(objects=50, seed=8)
        inserts, updates = workload.transaction_mix(1000)
        assert inserts == 50
        assert updates == 950

    def test_positions_move_between_reports(self):
        workload = MovingObjectWorkload(objects=1, seed=9)
        events = list(workload.events(max_events=10))
        positions = {(e.x, e.y) for e in events}
        assert len(positions) > 3  # the object actually travels

    def test_report_interval_spacing(self):
        workload = MovingObjectWorkload(objects=1, seed=10)
        events = list(workload.events(max_events=5))
        deltas = [
            b.time_ms - a.time_ms for a, b in zip(events, events[1:])
        ]
        assert all(abs(d - REPORT_INTERVAL_MS) < 1e-6 for d in deltas)


class TestGenericStreams:
    def test_uniform_stream_counts(self):
        stream = UpdateStream(keys=10, updates=50)
        ops = list(stream)
        assert len(ops) == 60
        inserts = [op for op in ops if op.kind == "insert"]
        assert len(inserts) == 10

    def test_uniform_is_round_robin(self):
        stream = UpdateStream(keys=4, updates=8)
        updates = [op.key for op in stream if op.kind == "update"]
        assert updates == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_zipf_skews_to_low_keys(self):
        keys = zipf_keys(5000, 100, seed=1)
        low = sum(1 for k in keys if k < 10)
        assert low > len(keys) * 0.4

    def test_zipf_stream_deterministic(self):
        a = list(UpdateStream(keys=20, updates=100, distribution="zipf"))
        b = list(UpdateStream(keys=20, updates=100, distribution="zipf"))
        assert a == b

    def test_bad_distribution_rejected(self):
        with pytest.raises(ValueError):
            UpdateStream(keys=1, updates=1, distribution="normal")
