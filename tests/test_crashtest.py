"""Crash-point exploration harness tests.

Runs a smaller-than-default workload (so the suite stays fast) through the
full enumerate → crash-at-each-point → recover → verify protocol, and
checks the harness's own machinery: oracle bookkeeping, deterministic
enumeration, crossing sampling, and the CLI repro path.
"""

from __future__ import annotations

from collections import Counter

import dataclasses

import pytest

from repro.faults.crashtest import (
    CrashTestConfig,
    ShadowOracle,
    _sample,
    build_db,
    enumerate_crossings,
    explore,
    main,
    replay_crash_point,
    run_workload,
)

# Small but seam-complete: enough transactions for several checkpoints and
# marks, a tight buffer for evictions, fat values for page pressure.
SMALL = CrashTestConfig(
    seed=0, transactions=18, keys=8, checkpoint_every=5, mark_every=3,
    buffer_pages=6, value_pad=500,
)


class TestShadowOracle:
    def test_commit_applies_pending(self):
        oracle = ShadowOracle()
        oracle.begin({1: "a"})
        assert oracle.acceptable_states() == [{}, {1: "a"}]
        oracle.commit_observed()
        assert oracle.acceptable_states() == [{1: "a"}]

    def test_delete_mutation(self):
        oracle = ShadowOracle()
        oracle.begin({1: "a"})
        oracle.commit_observed()
        oracle.begin({1: None})
        assert oracle.acceptable_states() == [{1: "a"}, {}]
        oracle.commit_observed()
        assert oracle.committed == {}

    def test_noop_pending_collapses_acceptable_states(self):
        oracle = ShadowOracle()
        oracle.begin({1: "a"})
        oracle.commit_observed()
        oracle.begin({1: "a"})   # overwrite with the identical value
        assert oracle.acceptable_states() == [{1: "a"}]

    def test_marks_snapshot_committed_state(self):
        oracle = ShadowOracle()
        oracle.begin({1: "a"})
        oracle.commit_observed()
        oracle.mark("t1")
        oracle.begin({1: "b"})
        oracle.commit_observed()
        assert oracle.marks == [("t1", {1: "a"})]


class TestEnumeration:
    def test_enumeration_is_deterministic(self):
        assert enumerate_crossings(SMALL) == enumerate_crossings(SMALL)

    def test_different_seeds_produce_different_workloads(self):
        # The trace of failpoint *names* can coincide across seeds at small
        # scale; the committed data must not.
        def final_state(seed: int):
            config = CrashTestConfig(
                seed=seed, transactions=18, keys=8, checkpoint_every=5,
                mark_every=3, buffer_pages=6, value_pad=500,
            )
            db, table = build_db(config)
            oracle = ShadowOracle()
            run_workload(db, table, config, oracle)
            return oracle.committed

        assert final_state(0) != final_state(1)

    def test_covers_all_required_seams(self):
        seams = Counter(
            name.split(".")[0] for name in enumerate_crossings(SMALL)
        )
        for seam in ("txn", "log", "buffer", "checkpoint", "disk"):
            assert seams[seam] > 0, f"no crossings on seam {seam!r}"


class TestSample:
    def test_all_points_when_under_budget(self):
        assert _sample(5, 10) == [0, 1, 2, 3, 4]
        assert _sample(5, 0) == [0, 1, 2, 3, 4]

    def test_even_spread_includes_endpoints(self):
        picked = _sample(100, 10)
        assert len(picked) == 10
        assert picked[0] == 0 and picked[-1] == 99
        assert picked == sorted(picked)


class TestReplay:
    def test_single_crash_point_recovers_clean(self):
        report = replay_crash_point(SMALL, 10)
        assert report.crashed
        assert report.ok, report.problems

    def test_unreachable_crossing_reported(self):
        report = replay_crash_point(SMALL, 10**6)
        assert not report.crashed
        assert not report.ok
        assert "never reached" in report.problems[0]


class TestExploration:
    def test_end_to_end_fifty_plus_points(self):
        total = len(enumerate_crossings(SMALL))
        assert total >= 50, (
            f"workload too small: only {total} crossings; the exploration "
            f"test needs >= 50 to satisfy the acceptance criterion"
        )
        result = explore(SMALL, max_points=60)
        assert len(result.explored) >= 50
        assert result.ok, [
            (r.crossing, r.name, r.problems) for r in result.failures
        ]
        seams = {name.split(".")[0] for name in result.by_name}
        assert {"txn", "log", "buffer", "checkpoint", "disk"} <= seams

    def test_progress_callback_sees_every_point(self):
        seen: list[int] = []
        explore(SMALL, max_points=5,
                progress=lambda done, total, report: seen.append(done))
        assert seen == [1, 2, 3, 4, 5]


class TestCLI:
    ARGS = ["--transactions", "18", "--keys", "8"]

    def test_single_point_repro_mode(self, capsys):
        rc = main(["--seed", "0", *self.ARGS, "--crash-point", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out

    def test_sweep_mode(self, capsys):
        rc = main(["--seed", "0", *self.ARGS, "--max-points", "12"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "crossings enumerated" in out
        assert "zero integrity or as-of-equivalence violations" in out

    def test_unreachable_point_exits_nonzero(self, capsys):
        rc = main(["--seed", "0", *self.ARGS, "--crash-point", "999999"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out


class TestBatchedFlushCrossings:
    """PR 6: crash points inside the batched write-back path."""

    BATCHED = dataclasses.replace(SMALL, eviction="2q", flush_batch=3)

    def test_flushbatch_crossings_enumerated(self):
        names = enumerate_crossings(self.BATCHED)
        for point in ("buffer.flushbatch.submit",
                      "buffer.flushbatch.write",
                      "buffer.flushbatch.done"):
            assert point in names, f"no crossing at {point}"
        # The per-page path stays in use too (flush_page / unbatched exits).
        assert not any(n.startswith("buffer.flushbatch")
                       for n in enumerate_crossings(SMALL))

    def test_crashes_inside_flush_batches_recover_clean(self):
        names = enumerate_crossings(self.BATCHED)
        points = [i for i, name in enumerate(names)
                  if name.startswith("buffer.flushbatch")]
        assert len(points) >= 3
        # A crash between the batch's single force and any of its page
        # writes leaves a durable prefix; redo must rebuild the rest.
        for crossing in points[:12]:
            report = replay_crash_point(self.BATCHED, crossing)
            assert report.crashed, names[crossing]
            assert report.ok, (names[crossing], report.problems)

    def test_repro_args_round_trip_new_flags(self):
        args = self.BATCHED.repro_args(crossing=7)
        assert "--eviction 2q" in args
        assert "--flush-batch 3" in args
