"""Range-sharded cluster: routing, 2PC, shared timestamps, crash recovery.

The contract under test is the single-engine contract, scaled out: the
cluster must behave — current state, history, and AS OF cuts — exactly
like one ImmortalDB engine fed the same operations, because every commit
timestamp flows through one shared authority.  The oracle in the
equivalence tests is literally a single engine on a shared clock.
"""

from __future__ import annotations

import random

import pytest

from repro.clock import SimClock, Timestamp
from repro.cluster import Decision, ShardRouter, TwoPhaseCoordinator
from repro.concurrency.transaction import TxnState
from repro.core.engine import ImmortalDB
from repro.core.integrity import verify_integrity
from repro.errors import (
    CrossShardAbort,
    InDoubtError,
    ShardUnavailableError,
)
from repro.faults.failpoints import (
    FailpointRegistry,
    SimulatedCrash,
    installed,
)

COLUMNS = [("k", "int"), ("v", "text")]


def make_cluster(shards=2, key_space=100, **kwargs):
    router = ShardRouter.for_int_keys(shards, key_space=key_space, **kwargs)
    table = router.create_table("kv", COLUMNS, key="k", immortal=True)
    return router, table


class TestRouting:
    def test_keys_land_on_their_range_shard(self):
        router, table = make_cluster(shards=4, key_space=100)
        assert router.route(0).shard_id == 0
        assert router.route(24).shard_id == 0
        assert router.route(25).shard_id == 1
        assert router.route(99).shard_id == 3

    def test_point_ops_route_and_scan_gathers(self):
        router, table = make_cluster(shards=4, key_space=100)
        with router.transaction() as txn:
            for k in (3, 30, 55, 90):
                table.insert(txn, {"k": k, "v": f"v{k}"})
        with router.transaction() as txn:
            assert table.read(txn, 55)["v"] == "v55"
            got = [row["k"] for row in table.scan(txn)]
        assert got == [3, 30, 55, 90]   # shard order == global key order
        # Each shard holds only its own range.
        for shard, expect in zip(router.shards, ([3], [30], [55], [90])):
            with shard.db.transaction() as txn:
                keys = [r["k"] for r in shard.db.table("kv").scan(txn)]
            assert keys == expect

    def test_scan_range_touches_only_covering_shards(self):
        router, table = make_cluster(shards=4, key_space=100)
        with router.transaction() as txn:
            for k in range(0, 100, 5):
                table.insert(txn, {"k": k, "v": "x"})
        covering = router.shards_for_range(30, 55)
        assert [s.shard_id for s in covering] == [1, 2]
        with router.transaction() as txn:
            got = [r["k"] for r in table.scan_range(txn, 30, 55)]
        assert got == list(range(30, 56, 5))


class TestCommitPaths:
    def test_single_shard_commit_takes_fast_path(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
            table.insert(txn, {"k": 2, "v": "b"})   # same shard
        assert router.fastpath_commits == 1
        assert router.twopc_commits == 0

    def test_cross_shard_commit_runs_2pc(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
            table.insert(txn, {"k": 60, "v": "b"})
        assert router.twopc_commits == 1
        assert router.coordinator.commit_decisions == 1
        assert router.coordinator.forgotten == 1
        assert not router.coordinator.decisions   # forgotten ⇒ table empty

    def test_cross_shard_branches_share_one_timestamp(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
            table.insert(txn, {"k": 60, "v": "b"})
        (t1,) = [ts for ts, _ in table.history(1)]
        (t2,) = [ts for ts, _ in table.history(60)]
        assert t1 == t2

    def test_read_only_cross_shard_txn_stays_fast_path(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
            table.insert(txn, {"k": 60, "v": "b"})
        before = router.twopc_commits
        with router.transaction() as txn:
            table.read(txn, 1)
            table.read(txn, 60)
        assert router.twopc_commits == before

    def test_prepare_veto_aborts_everywhere(self):
        # OCC ablation: reads validate at prepare time, so a read
        # invalidated by a competing commit makes one participant vote no,
        # and the whole cross-shard transaction must abort on every shard.
        router, table = make_cluster(cc_mode="occ")
        with router.transaction() as txn:
            for k, v in ((2, "a"), (60, "b"), (61, "c")):
                table.insert(txn, {"k": k, "v": v})
        victim = router.begin()
        assert table.read(victim, 60)["v"] == "b"   # snapshot read
        with router.transaction() as other:
            table.update(other, 60, {"v": "theirs"})   # invalidates it
        table.update(victim, 2, {"v": "mine"})      # shard 0 write
        table.update(victim, 61, {"v": "mine"})     # shard 1 write
        with pytest.raises(CrossShardAbort) as exc_info:
            router.commit(victim)
        assert exc_info.value.gtid is not None
        assert router.twopc_aborts == 1
        # Nothing half-committed anywhere.
        with router.transaction() as txn:
            assert table.read(txn, 2)["v"] == "a"
            assert table.read(txn, 61)["v"] == "c"
            assert table.read(txn, 60)["v"] == "theirs"


class TestCrashRecovery:
    def test_crash_before_decision_presumes_abort(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 10, "v": "base"})
            table.insert(txn, {"k": 60, "v": "base"})
        registry = FailpointRegistry()
        registry.crash_on("cluster.2pc.decide")
        with pytest.raises(SimulatedCrash):
            with installed(registry):
                txn = router.begin()
                table.update(txn, 10, {"v": "new"})
                table.update(txn, 60, {"v": "new"})
                router.commit(txn)
        router.crash()
        router.recover()
        with router.transaction() as txn:
            assert table.read(txn, 10)["v"] == "base"
            assert table.read(txn, 60)["v"] == "base"
        for shard in router.shards:
            verify_integrity(shard.db, strict=True)

    def test_crash_after_decision_commits_everywhere(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 10, "v": "base"})
            table.insert(txn, {"k": 60, "v": "base"})
        registry = FailpointRegistry()
        registry.crash_on("cluster.2pc.decision_logged")
        with pytest.raises(SimulatedCrash):
            with installed(registry):
                txn = router.begin()
                table.update(txn, 10, {"v": "new"})
                table.update(txn, 60, {"v": "new"})
                router.commit(txn)
        router.crash()
        router.recover()
        with router.transaction() as txn:
            assert table.read(txn, 10)["v"] == "new"
            assert table.read(txn, 60)["v"] == "new"

    def test_in_doubt_holds_locks_until_resolution(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 10, "v": "base"})
            table.insert(txn, {"k": 60, "v": "base"})
        registry = FailpointRegistry()
        registry.crash_on("cluster.2pc.prepared")
        with pytest.raises(SimulatedCrash):
            with installed(registry):
                txn = router.begin()
                table.update(txn, 10, {"v": "new"})
                table.update(txn, 60, {"v": "new"})
                router.commit(txn)
        router.crash()
        router.recover(resolve=False)
        assert router.in_doubt_gtids()
        probe = router.begin()
        with pytest.raises(InDoubtError) as exc_info:
            table.update(probe, 10, {"v": "probe"})
        router.abort(probe)
        assert exc_info.value.gtid in router.in_doubt_gtids()
        resolved = router.resolve_in_doubt()
        assert resolved >= 1
        assert not router.in_doubt_gtids()
        with router.transaction() as txn:
            table.update(txn, 10, {"v": "after"})   # lock released
        with router.transaction() as txn:
            assert table.read(txn, 10)["v"] == "after"

    def test_down_shard_raises_typed_error(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 10, "v": "a"})
            table.insert(txn, {"k": 60, "v": "b"})
        router.crash_shard(1)
        txn = router.begin()
        assert table.read(txn, 10)["v"] == "a"   # shard 0 still serves
        with pytest.raises(ShardUnavailableError) as exc_info:
            table.read(txn, 60)
        assert exc_info.value.shard_id == 1
        router.abort(txn)
        router.recover_shard(1)
        with router.transaction() as txn:
            assert table.read(txn, 60)["v"] == "b"


class TestTimestampAuthority:
    def test_commit_timestamps_strictly_increase_across_shards(self):
        router, table = make_cluster(shards=3, key_space=90)
        seen: list[Timestamp] = []
        for k in (5, 35, 65, 6, 36, 66):
            with router.transaction() as txn:
                table.insert(txn, {"k": k, "v": "x"})
            seen.append(max(ts for ts, _ in table.history(k)))
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_monotonicity_survives_cluster_restart(self):
        """Satellite 3: the authority's high water survives crash+recovery.

        Without the persisted floor, a restarted clock could re-issue a
        timestamp ≤ an already-committed one, corrupting history order.
        """
        router, table = make_cluster()
        for k in (10, 60):
            with router.transaction() as txn:
                table.insert(txn, {"k": k, "v": "before"})
        high_before = router.authority.high_water
        assert high_before is not None
        router.checkpoint()
        router.crash()
        router.recover()
        assert router.authority.now() >= high_before
        with router.transaction() as txn:
            table.update(txn, 10, {"v": "after"})
        times = sorted(ts for ts, _ in table.history(10))
        assert times[-1] > high_before
        # History stays well-ordered: as-of at the old high water sees the
        # old value, now sees the new one.
        assert table.read_as_of(high_before, 10)["v"] == "before"
        assert table.read_as_of(router.now(), 10)["v"] == "after"

    def test_engine_clock_floor_restores_after_reopen(self):
        """The engine-level half of satellite 3, without any cluster: a
        catalog-persisted high water lifts a stale clock past every
        committed timestamp on recovery."""
        clock = SimClock(ms_per_timestamp=5.0)
        db = ImmortalDB(clock=clock)
        table = db.create_table("t", COLUMNS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        db.advance_time(10_000.0)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "b"})
        committed = max(ts for ts, _ in table.history(1))
        db.checkpoint()
        db.crash()
        # Adversarial restart: the replacement clock starts at zero time,
        # as a real process restart would.
        db.clock.__init__(ms_per_timestamp=5.0)
        db.recover()
        assert db.clock.now() >= committed
        with db.transaction() as txn:
            table = db.table("t")
            table.update(txn, 1, {"v": "c"})
        times = [ts for ts, _ in table.history(1)]
        assert times == sorted(times)
        assert len(set(times)) == 3


class TestCoordinatorLog:
    def test_forced_decision_survives_crash(self):
        coord = TwoPhaseCoordinator()
        gtid = coord.allocate_gtid()
        coord.decide_commit(gtid, Timestamp(5, 1), [0, 1])
        coord.crash()
        coord.recover()
        decision, ts = coord.resolve(gtid)
        assert decision is Decision.COMMIT
        assert ts == Timestamp(5, 1)

    def test_second_decision_survives_crash(self):
        # Regression: force(lsn) would no-op on a record whose start offset
        # equals the flushed watermark, losing every decision after the
        # first.
        coord = TwoPhaseCoordinator()
        g1, g2 = coord.allocate_gtid(), coord.allocate_gtid()
        coord.decide_commit(g1, Timestamp(5, 1), [0, 1])
        coord.decide_commit(g2, Timestamp(6, 1), [0, 1])
        coord.crash()
        coord.recover()
        assert coord.resolve(g2) == (Decision.COMMIT, Timestamp(6, 1))

    def test_unforced_abort_presumes_abort_after_crash(self):
        coord = TwoPhaseCoordinator()
        gtid = coord.allocate_gtid()
        coord.decide_abort(gtid)
        coord.crash()
        coord.recover()
        assert coord.resolve(gtid) == (Decision.ABORT, None)

    def test_forgotten_gtid_resolves_abort_and_floor_advances(self):
        coord = TwoPhaseCoordinator()
        gtid = coord.allocate_gtid()
        coord.decide_commit(gtid, Timestamp(5, 1), [0])
        coord.forget(gtid)
        # Forget records are lazy; only a durable one drops the entry from
        # replay (losing one is harmless — nobody asks about acked gtids).
        coord.log.force()
        coord.crash()
        coord.recover()
        assert coord.resolve(gtid) == (Decision.ABORT, None)
        assert coord.allocate_gtid() > gtid


class TestScatterGatherEquivalence:
    """Satellite 4: the cluster is observationally equal to one engine.

    Both run the same seeded workload on one shared clock, so commit
    timestamps align 1:1 and every AS OF cut must match exactly — including
    after a mid-workload shard crash + recovery.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_cluster_matches_single_engine_oracle(self, seed, shards):
        self._run(seed=seed, shards=shards, crash_at=None)

    @pytest.mark.parametrize("seed", [0, 3])
    def test_equivalence_across_mid_workload_shard_crash(self, seed):
        self._run(seed=seed, shards=2, crash_at=20)

    @staticmethod
    def _run(*, seed: int, shards: int, crash_at: int | None) -> None:
        keys = 16
        clock = SimClock(ms_per_timestamp=5.0)
        router = ShardRouter.for_int_keys(shards, key_space=keys, clock=clock)
        ctable = router.create_table("kv", COLUMNS, key="k", immortal=True)
        oracle = ImmortalDB(clock=clock)
        otable = oracle.create_table("kv", COLUMNS, key="k", immortal=True)

        rng = random.Random(seed)
        alive: dict[int, bool] = {}
        marks: list[Timestamp] = []
        for i in range(40):
            router.advance_time(rng.uniform(5.0, 100.0))
            key = rng.randrange(keys)
            delete = alive.get(key, False) and rng.random() < 0.25
            value = None if delete else f"s{seed}i{i}"
            partner = None
            if i % 3 == 2:
                partner = (key + keys // shards) % keys
                while router.route(partner) is router.route(key):
                    partner = (partner + 1) % keys
            ctxn, otxn = router.begin(), oracle.begin()
            for tbl, txn in ((ctable, ctxn), (otable, otxn)):
                if value is None:
                    tbl.delete(txn, key)
                elif alive.get(key, False):
                    tbl.update(txn, key, {"v": value})
                else:
                    tbl.insert(txn, {"k": key, "v": value})
                if partner is not None and partner != key:
                    pvalue = f"s{seed}i{i}p"
                    if alive.get(partner, False):
                        tbl.update(txn, partner, {"v": pvalue})
                    else:
                        tbl.insert(txn, {"k": partner, "v": pvalue})
            # Commit the cluster txn first, then pin the oracle to the
            # identical timestamp so the two histories are congruent.
            ts = router.commit(ctxn)
            otxn.pinned_ts = ts
            oracle.commit(otxn)
            alive[key] = value is not None
            if partner is not None and partner != key:
                alive[partner] = True
            if i % 5 == 4:
                marks.append(router.now())
            if crash_at is not None and i == crash_at:
                victim = rng.randrange(shards)
                router.checkpoint()
                router.crash_shard(victim)
                router.recover_shard(victim)

        with router.transaction() as txn:
            cluster_now = [(r["k"], r["v"]) for r in ctable.scan(txn)]
        with oracle.transaction() as txn:
            oracle_now = [(r["k"], r["v"]) for r in otable.scan(txn)]
        assert cluster_now == oracle_now
        for ts in marks:
            c = [(r["k"], r["v"]) for r in ctable.scan_as_of(ts)]
            o = [(r["k"], r["v"]) for r in otable.scan_as_of(ts)]
            assert c == o, f"as-of cut diverged at {ts}"
        for key in range(keys):
            c = list(ctable.history(key))
            o = list(otable.history(key))
            assert c == o, f"history diverged for key {key}"
        for shard in router.shards:
            verify_integrity(shard.db, strict=True)


class TestClusterStats:
    def test_stats_aggregate_and_expose_cluster_counters(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        with router.transaction() as txn:
            table.insert(txn, {"k": 2, "v": "b"})
            table.insert(txn, {"k": 60, "v": "c"})
        stats = router.stats()
        assert stats["cluster_shards"] == 2
        assert stats["cluster_fastpath_commits"] == 1
        assert stats["cluster_2pc_commits"] == 1
        assert stats["cluster_timestamps_issued"] == 2
        per_shard = router.shard_stats()
        assert len(per_shard) == 2
        assert sum(s["commits"] for s in per_shard) >= 3


class TestServiceWireErrors:
    """Satellite: cluster errors crossing the service wire keep their
    type name and carry the right ``retryable`` classification, so a
    remote client can tell "back off and retry" from "give up"."""

    @staticmethod
    def _loopback(router, key):
        from repro.service.core import ServiceCore
        from repro.service.transport import LoopbackConnection

        core = ServiceCore(router, retry_step_ms=0.0)
        return core, LoopbackConnection(core, client_key=key)

    def test_in_doubt_is_retryable_and_clears_on_resolution(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 10, "v": "base"})
            table.insert(txn, {"k": 60, "v": "base"})
        registry = FailpointRegistry()
        registry.crash_on("cluster.2pc.prepared")
        with pytest.raises(SimulatedCrash):
            with installed(registry):
                txn = router.begin()
                table.update(txn, 10, {"v": "new"})
                table.update(txn, 60, {"v": "new"})
                router.commit(txn)
        router.crash()
        router.recover(resolve=False)
        assert router.in_doubt_gtids()

        core, conn = self._loopback(router, "wire-indoubt")
        resp = conn.execute("UPDATE kv SET v = 'probe' WHERE k = 10")
        assert resp["status"] == "error"
        assert resp["error"] == "InDoubtError"
        assert resp["retryable"] is True
        # Waiting out 2PC resolution is the client's job, not the
        # server's: the server must not have burned its retry budget.
        assert core.stats.retries == 0

        router.resolve_in_doubt()
        resp = conn.execute("UPDATE kv SET v = 'probe' WHERE k = 10")
        assert resp["status"] == "ok"

    def test_shard_unavailable_is_retryable_and_clears_on_recovery(self):
        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 60, "v": "b"})
        router.crash_shard(1)
        core, conn = self._loopback(router, "wire-down")
        resp = conn.execute("SELECT k, v FROM kv WHERE k = 60")
        assert resp["status"] == "error"
        assert resp["error"] == "ShardUnavailableError"
        assert resp["retryable"] is True
        assert core.stats.retries == 0
        router.recover_shard(1)
        resp = conn.execute("SELECT k, v FROM kv WHERE k = 60")
        assert resp["status"] == "ok"
        assert resp["rows"] == [{"k": 60, "v": "b"}]

    def test_cross_shard_abort_is_retried_then_surfaced_retryable(
        self, monkeypatch
    ):
        from repro.sql.executor import Session

        calls = {"n": 0}

        def veto(self, sql):
            calls["n"] += 1
            raise CrossShardAbort(
                "prepare veto", victim_tid=7, shard_id=1, gtid=3
            )

        monkeypatch.setattr(Session, "execute", veto)
        router, _ = make_cluster()
        core, conn = self._loopback(router, "wire-abort")
        resp = conn.execute("UPDATE kv SET v = 'x' WHERE k = 1")
        assert resp["status"] == "error"
        assert resp["error"] == "CrossShardAbort"
        assert resp["retryable"] is True
        # Unlike the wait-for-resolution errors, an abort IS worth an
        # immediate server-side rerun before giving the client the slip.
        assert calls["n"] == core.max_retries + 1
        assert core.stats.retries == core.max_retries


class TestConcurrentClusterAccess:
    """Regressions found driving the socket service over a sharded
    backend: the router cannot back a WorkerPool (branch TIDs collide
    across shards), and under blocking locks a waiter must not park
    behind an in-doubt holder that only resolution can release."""

    def test_threaded_service_over_router_runs_pool_less(self):
        from repro.service.client import ServiceClient
        from repro.service.server import ThreadedService

        router, _ = make_cluster()
        with ThreadedService(router, port=0, pool_workers=2) as svc:
            assert svc.service.pool is None
            with ServiceClient("127.0.0.1", svc.port) as client:
                for k, v in ((10, "a"), (60, "b")):
                    resp = client.execute(
                        f"INSERT INTO kv (k, v) VALUES ({k}, '{v}')"
                    )
                    assert resp["status"] == "ok"
                resp = client.execute("SELECT k, v FROM kv")
                assert resp["rows"] == [
                    {"k": 10, "v": "a"}, {"k": 60, "v": "b"},
                ]
        router.close()

    def test_in_doubt_conflict_raises_immediately_under_blocking_locks(self):
        import time

        router, table = make_cluster()
        with router.transaction() as txn:
            table.insert(txn, {"k": 10, "v": "base"})
            table.insert(txn, {"k": 60, "v": "base"})
        registry = FailpointRegistry()
        registry.crash_on("cluster.2pc.prepared")
        with pytest.raises(SimulatedCrash):
            with installed(registry):
                txn = router.begin()
                table.update(txn, 10, {"v": "new"})
                table.update(txn, 60, {"v": "new"})
                router.commit(txn)
        router.crash()
        router.recover(resolve=False)
        router.enable_concurrency()   # blocking locks on every shard
        assert router.in_doubt_gtids()
        probe = router.begin()
        start = time.monotonic()
        with pytest.raises(InDoubtError):
            table.update(probe, 10, {"v": "probe"})
        # The wedged holder short-circuits the wait: no parking out the
        # 30 s lock timeout before the typed error surfaces.
        assert time.monotonic() - start < 5.0
        router.abort(probe)
        router.resolve_in_doubt()
        with router.transaction() as txn:
            table.update(txn, 10, {"v": "after"})   # wedge cleared
        with router.transaction() as txn:
            assert table.read(txn, 10)["v"] == "after"
        router.close()
