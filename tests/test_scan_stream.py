"""Streaming scans, the as-of route cache, and batched version resolution.

The load-bearing property: every cached/streaming read path must return
exactly what a naive, uncached oracle computes from the raw page chains —
across seeds, as-of times, concurrent updates, and mid-scan aborts.  The
cache-invalidation tests then check the sharper claim that no stale route
is ever served after splits, crashes, or in-place mutations.
"""

from __future__ import annotations

import random

import pytest

from repro import ColumnType, ImmortalDB
from repro.core.asof import AsOfRouteCache, AsOfStats, page_for_time
from repro.faults.failpoints import FailpointRegistry, installed

COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


def _db(**kwargs) -> ImmortalDB:
    kwargs.setdefault("buffer_pages", 4096)
    return ImmortalDB(asof_route_cache=True, use_tsb_index=True, **kwargs)


def _table(db: ImmortalDB):
    return db.create_table("t", COLS, key="k", immortal=True)


def _naive_scan_as_of(db: ImmortalDB, table, ts) -> list[dict]:
    """Uncached oracle: raw chain routing + linear visibility, no caches."""
    from repro.concurrency.snapshot import visible_version

    rows = []
    stats = AsOfStats()
    for leaf, key_low, key_high in table.btree.leaves_with_bounds():
        page = page_for_time(db.buffer, leaf, ts, stats)
        if page is None:
            continue
        for key in page.keys():
            if key < key_low or (key_high is not None and key >= key_high):
                continue
            version = visible_version(
                page.chain(key), horizon=ts, inclusive=True,
                resolve=table._resolve, own_tid=None,
            )
            if version is not None and not version.is_delete_stub:
                rows.append(table.codec.decode_row(key, version.payload))
    return rows


def _grow(db: ImmortalDB, table, rng: random.Random, keys: int,
          rounds: int, live: set[int] | None = None) -> list:
    """Seeded insert/update/delete churn; returns the time marks."""
    marks = []
    live = set() if live is None else live
    for _ in range(rounds):
        for k in range(keys):
            roll = rng.random()
            with db.transaction() as txn:
                if k not in live:
                    table.insert(txn, {"k": k, "v": f"v{rng.random():.8f}"})
                    live.add(k)
                elif roll < 0.15:
                    table.delete(txn, k)
                    live.discard(k)
                elif roll < 0.70:
                    table.update(txn, k, {"v": f"v{rng.random():.8f}"})
        db.clock.advance_ms(300.0)
        marks.append(db.clock.now())
    return marks


class TestStreamingMatchesOracle:
    @pytest.mark.parametrize("seed", [3, 17, 92])
    def test_scan_as_of_equals_naive_oracle(self, seed):
        db = _db()
        table = _table(db)
        rng = random.Random(seed)
        marks = _grow(db, table, rng, keys=50, rounds=5)
        for ts in marks:
            expected = _naive_scan_as_of(db, table, ts)
            assert table.scan_as_of(ts) == expected
            # Second pass rides the warmed route/page-view caches.
            assert table.scan_as_of(ts) == expected

    def test_scan_range_as_of_equals_oracle_slice(self):
        db = _db()
        table = _table(db)
        marks = _grow(db, table, random.Random(7), keys=60, rounds=4)
        for ts in marks[::2]:
            oracle = [r for r in _naive_scan_as_of(db, table, ts)
                      if 10 <= r["k"] <= 40]
            from repro.concurrency.transaction import TxnMode

            txn = db.txn_mgr.begin(TxnMode.AS_OF, as_of=ts)
            try:
                assert table.scan_range(txn, 10, 40) == oracle
            finally:
                db.txn_mgr.commit(txn)

    def test_streaming_iterators_are_lazy_and_complete(self):
        db = _db()
        table = _table(db)
        marks = _grow(db, table, random.Random(5), keys=40, rounds=3)
        it = table.scan_as_of_iter(marks[-1])
        first = next(it)
        rest = list(it)
        assert [first] + rest == table.scan_as_of(marks[-1])
        with db.transaction() as txn:
            rows = list(table.scan_range_iter(txn, 5, 15))
            assert rows == table.scan_range(txn, 5, 15)

    def test_concurrent_uncommitted_writer_stays_invisible(self):
        db = _db()
        table = _table(db)
        marks = _grow(db, table, random.Random(11), keys=30, rounds=3)
        writer = db.txn_mgr.begin()
        table.update(writer, 3, {"v": "in-flight"})
        ts = db.clock.now()
        rows = {r["k"]: r["v"] for r in table.scan_as_of(ts)}
        assert rows[3] != "in-flight"
        assert table.scan_as_of(ts) == _naive_scan_as_of(db, table, ts)
        db.txn_mgr.abort(writer)

    def test_mid_scan_abort_of_concurrent_writer(self):
        """A writer aborting while a streaming scan is suspended mid-way
        must not corrupt the scan: re-running it matches the oracle."""
        db = _db()
        table = _table(db)
        _grow(db, table, random.Random(13), keys=40, rounds=3)
        writer = db.txn_mgr.begin()
        table.update(writer, 35, {"v": "doomed"})
        ts = db.clock.now()
        it = table.scan_as_of_iter(ts)
        consumed = [next(it) for _ in range(5)]
        db.txn_mgr.abort(writer)
        remaining = list(it)
        full = consumed + remaining
        assert {r["k"] for r in full} == {
            r["k"] for r in _naive_scan_as_of(db, table, ts)
        }
        # A fresh scan after the abort is exactly the oracle.
        assert table.scan_as_of(ts) == _naive_scan_as_of(db, table, ts)

    def test_history_matches_plain_engine(self):
        cached = _db()
        plain = ImmortalDB(buffer_pages=4096, use_tsb_index=True)
        rows_c, rows_p = _table(cached), _table(plain)
        for db, table in ((cached, rows_c), (plain, rows_p)):
            _grow(db, table, random.Random(29), keys=25, rounds=5)
        for k in range(25):
            assert rows_c.history(k) == rows_p.history(k)

    def test_returned_rows_are_private_copies(self):
        """Memoized decoding must never let one caller's mutation leak."""
        db = _db()
        table = _table(db)
        marks = _grow(db, table, random.Random(31), keys=10, rounds=2)
        first = table.scan_as_of(marks[-1])
        first[0]["v"] = "mutated by caller"
        again = table.scan_as_of(marks[-1])
        assert again[0]["v"] != "mutated by caller"


class TestRouteCacheInvalidation:
    def test_no_stale_route_after_heavy_churn(self):
        """Interleave scans with churn that forces time and key splits;
        every scan must match the oracle (i.e. no stale cached route)."""
        db = _db()
        table = _table(db)
        rng = random.Random(41)
        marks: list = []
        live: set[int] = set()
        for _ in range(6):
            marks.extend(_grow(db, table, rng, keys=45, rounds=1, live=live))
            for ts in marks:
                assert table.scan_as_of(ts) == _naive_scan_as_of(
                    db, table, ts
                )

    def test_crash_discards_cached_routes(self):
        """Recovery must rebuild routing from durable state, not serve
        pre-crash cached routes."""
        db = _db()
        table = _table(db)
        marks = _grow(db, table, random.Random(43), keys=40, rounds=4)
        warm = {ts: table.scan_as_of(ts) for ts in marks}
        assert len(db.route_cache) > 0
        db.crash_and_recover()
        assert len(db.route_cache) == 0
        table = db.tables["t"]
        for ts, rows in warm.items():
            assert table.scan_as_of(ts) == _naive_scan_as_of(db, table, ts)

    def test_failpoints_fire_on_hit_miss_invalidate(self):
        reg = FailpointRegistry()
        reg.trace_on()
        with installed(reg):
            db = _db()
            table = _table(db)
            rng = random.Random(47)
            live: set[int] = set()
            marks = _grow(db, table, rng, keys=40, rounds=4, live=live)
            table.scan_as_of(marks[0])
            table.scan_as_of(marks[0])
            # More churn splits cached leaves, which must invalidate or
            # re-seed their routes; the follow-up scan still matches.
            marks += _grow(db, table, rng, keys=40, rounds=3, live=live)
            assert table.scan_as_of(marks[0]) == _naive_scan_as_of(
                db, table, marks[0]
            )
        trace = reg.trace or []
        assert "asof.route.miss" in trace
        assert "asof.route.hit" in trace
        stats = db.asof_stats
        assert stats.route_cache_hits > 0
        assert stats.route_cache_misses > 0

    def test_route_counters_reported_in_engine_stats(self):
        db = _db()
        table = _table(db)
        marks = _grow(db, table, random.Random(53), keys=30, rounds=3)
        table.scan_as_of(marks[-1])
        table.scan_as_of(marks[-1])
        s = db.stats()
        for key in ("asof_page_reads", "asof_chain_steps",
                    "route_cache_hits", "route_cache_misses"):
            assert key in s
        assert s["route_cache_hits"] > 0
        assert s["asof_page_reads"] > 0

    def test_cache_disabled_engine_has_no_route_counters_activity(self):
        """Default engines never touch the cache: counter identity with the
        original implementation is what keeps the figure benchmarks stable."""
        db = ImmortalDB(buffer_pages=1024)
        table = _table(db)
        _grow(db, table, random.Random(59), keys=20, rounds=2)
        table.scan_as_of(db.clock.now())
        s = db.stats()
        assert db.route_cache is None
        assert s["route_cache_hits"] == 0
        assert s["route_cache_misses"] == 0


class TestRouteCacheUnit:
    def test_route_matches_page_for_time_at_interval_edges(self):
        db = _db()
        table = _table(db)
        marks = _grow(db, table, random.Random(61), keys=40, rounds=5)
        cache = AsOfRouteCache(db.buffer, AsOfStats())
        probe_stats = AsOfStats()
        for leaf, _, _ in table.btree.leaves_with_bounds():
            probes = [leaf.split_ts] + marks
            for ts in probes:
                want = page_for_time(db.buffer, leaf, ts, probe_stats)
                got = cache.route(leaf, ts)
                assert (got is None) == (want is None)
                if got is not None:
                    assert got.page_id == want.page_id

    def test_eviction_bounds_cache_size(self):
        db = _db()
        table = _table(db)
        _grow(db, table, random.Random(67), keys=30, rounds=3)
        cache = AsOfRouteCache(db.buffer, AsOfStats(), max_entries=2)
        leaves = [leaf for leaf, _, _ in table.btree.leaves_with_bounds()]
        for leaf in leaves:
            cache.route(leaf, db.clock.now())
        assert len(cache) <= 2
