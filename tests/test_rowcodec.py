"""Tests for row/key codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.rowcodec import ColumnType, RowCodec, decode_key, encode_key
from repro.errors import SchemaError


class TestKeyEncoding:
    @pytest.mark.parametrize("ctype,lo,hi", [
        (ColumnType.SMALLINT, -(1 << 15), (1 << 15) - 1),
        (ColumnType.INT, -(1 << 31), (1 << 31) - 1),
        (ColumnType.BIGINT, -(1 << 63), (1 << 63) - 1),
    ])
    def test_int_roundtrip_at_extremes(self, ctype, lo, hi):
        for value in (lo, -1, 0, 1, hi):
            assert decode_key(encode_key(value, ctype), ctype) == value

    def test_int_out_of_range(self):
        with pytest.raises(SchemaError):
            encode_key(1 << 15, ColumnType.SMALLINT)

    def test_bool_is_not_an_integer_key(self):
        with pytest.raises(SchemaError):
            encode_key(True, ColumnType.INT)

    def test_text_roundtrip(self):
        assert decode_key(encode_key("héllo", ColumnType.TEXT),
                          ColumnType.TEXT) == "héllo"

    def test_text_with_nul_rejected(self):
        with pytest.raises(SchemaError):
            encode_key("a\x00b", ColumnType.TEXT)

    def test_float_cannot_be_a_key(self):
        with pytest.raises(SchemaError):
            encode_key(1.5, ColumnType.FLOAT)

    @given(st.integers(-(1 << 31), (1 << 31) - 1),
           st.integers(-(1 << 31), (1 << 31) - 1))
    def test_int_encoding_is_order_preserving(self, a, b):
        ea = encode_key(a, ColumnType.INT)
        eb = encode_key(b, ColumnType.INT)
        assert (ea < eb) == (a < b)

    @given(
        st.text(
            alphabet=st.characters(
                blacklist_characters="\x00", blacklist_categories=["Cs"]
            ),
            max_size=20,
        ),
        st.text(
            alphabet=st.characters(
                blacklist_characters="\x00", blacklist_categories=["Cs"]
            ),
            max_size=20,
        ),
    )
    def test_text_order_preserved(self, a, b):
        # UTF-8 byte order equals code-point order (surrogates excluded:
        # they are not encodable).
        ea = encode_key(a, ColumnType.TEXT)
        eb = encode_key(b, ColumnType.TEXT)
        assert (ea < eb) == (a < b)


class TestRowCodec:
    @pytest.fixture
    def codec(self):
        return RowCodec(
            [("id", ColumnType.INT), ("name", ColumnType.TEXT),
             ("score", ColumnType.FLOAT), ("active", ColumnType.BOOL),
             ("big", ColumnType.BIGINT)],
            key_column="id",
        )

    def test_full_roundtrip(self, codec):
        row = {"id": 7, "name": "x", "score": 1.25, "active": True,
               "big": 1 << 40}
        key, payload = codec.encode_row(row)
        assert codec.decode_row(key, payload) == row

    def test_nulls_roundtrip(self, codec):
        row = {"id": 1, "name": None, "score": None, "active": None,
               "big": None}
        key, payload = codec.encode_row(row)
        assert codec.decode_row(key, payload) == row

    def test_missing_columns_become_null(self, codec):
        key, payload = codec.encode_row({"id": 1, "name": "only"})
        decoded = codec.decode_row(key, payload)
        assert decoded["name"] == "only"
        assert decoded["score"] is None

    def test_unknown_column_rejected(self, codec):
        with pytest.raises(SchemaError):
            codec.encode_payload({"nope": 1})

    def test_missing_key_rejected(self, codec):
        with pytest.raises(SchemaError):
            codec.encode_row({"name": "x"})

    def test_null_key_rejected(self, codec):
        with pytest.raises(SchemaError):
            codec.encode_row({"id": None, "name": "x"})

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            RowCodec([("a", ColumnType.INT), ("a", ColumnType.TEXT)], "a")

    def test_key_not_in_schema_rejected(self):
        with pytest.raises(SchemaError):
            RowCodec([("a", ColumnType.INT)], "b")

    def test_trailing_bytes_rejected(self, codec):
        _, payload = codec.encode_row({"id": 1})
        with pytest.raises(SchemaError):
            codec.decode_payload(payload + b"\x00")

    @given(
        ident=st.integers(-(1 << 31), (1 << 31) - 1),
        name=st.one_of(st.none(), st.text(max_size=50)),
        score=st.one_of(st.none(), st.floats(allow_nan=False)),
        active=st.one_of(st.none(), st.booleans()),
    )
    def test_roundtrip_property(self, ident, name, score, active):
        codec = RowCodec(
            [("id", ColumnType.INT), ("name", ColumnType.TEXT),
             ("score", ColumnType.FLOAT), ("active", ColumnType.BOOL)],
            key_column="id",
        )
        row = {"id": ident, "name": name, "score": score, "active": active}
        key, payload = codec.encode_row(row)
        assert codec.decode_row(key, payload) == row
