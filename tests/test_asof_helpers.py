"""Unit tests for the AS OF routing helpers (repro.core.asof)."""

from __future__ import annotations

import pytest

from repro.clock import Timestamp
from repro.core.asof import AsOfStats, page_for_time, version_as_of
from repro.errors import AccessMethodError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion


def T(i: int) -> Timestamp:
    return Timestamp(i, 0)


@pytest.fixture
def buffer():
    return BufferPool(InMemoryDisk(), capacity=32)


def make_chain(buffer: BufferPool, ranges: list[tuple[int, int]]) -> DataPage:
    """Build a current page whose history chain covers the given ranges.

    ``ranges`` is oldest-first [(start, end), ...]; the current page's
    range starts at the last end.
    """
    pages = []
    for start, end in ranges:
        page = buffer.new_page(
            lambda pid: DataPage(pid, is_history=True, immortal=True)
        )
        page.split_ts = T(start)
        page.end_ts = T(end)
        pages.append(page)
    current = buffer.new_page(lambda pid: DataPage(pid, immortal=True))
    current.split_ts = T(ranges[-1][1]) if ranges else Timestamp.MIN
    for newer, older in zip(pages[1:] + [current], pages):
        newer.history_page_id = older.page_id
    return current


class TestPageForTime:
    def test_recent_time_stays_in_current_page(self, buffer):
        current = make_chain(buffer, [(0, 10), (10, 20)])
        assert page_for_time(buffer, current, T(25)) is current
        assert page_for_time(buffer, current, T(20)) is current

    def test_routes_to_correct_history_page(self, buffer):
        current = make_chain(buffer, [(0, 10), (10, 20)])
        assert page_for_time(buffer, current, T(15)).split_ts == T(10)
        assert page_for_time(buffer, current, T(10)).split_ts == T(10)
        assert page_for_time(buffer, current, T(5)).split_ts == T(0)

    def test_time_before_history_is_none(self, buffer):
        current = make_chain(buffer, [(5, 10), (10, 20)])
        assert page_for_time(buffer, current, T(2)) is None

    def test_unsplit_page_covers_everything(self, buffer):
        current = make_chain(buffer, [])
        assert page_for_time(buffer, current, T(1)) is current

    def test_stats_count_hops(self, buffer):
        current = make_chain(buffer, [(0, 10), (10, 20), (20, 30)])
        stats = AsOfStats()
        page_for_time(buffer, current, T(5), stats)
        assert stats.chain_hops == 3
        assert stats.pages_examined == 1
        page_for_time(buffer, current, T(35), stats)
        assert stats.chain_hops == 3  # no new hops for a current-page hit

    def test_corrupt_chain_detected(self, buffer):
        current = make_chain(buffer, [(0, 10)])
        not_history = buffer.new_page(lambda pid: DataPage(pid))
        current.history_page_id = not_history.page_id
        with pytest.raises(AccessMethodError):
            page_for_time(buffer, current, T(5))


class TestVersionAsOf:
    def _page(self) -> DataPage:
        page = DataPage(1, immortal=True)
        for t in (10, 20, 30):
            rec = RecordVersion.new(b"k", f"v{t}".encode(), tid=1)
            rec.stamp(T(t))
            page.insert_version(rec)
        return page

    def _resolve(self, tid):
        return None, False

    def test_exact_boundary_inclusive(self):
        page = self._page()
        got = version_as_of(page, b"k", T(20), self._resolve)
        assert got.payload == b"v20"

    def test_between_versions(self):
        page = self._page()
        got = version_as_of(page, b"k", T(25), self._resolve)
        assert got.payload == b"v20"

    def test_before_first_version(self):
        page = self._page()
        assert version_as_of(page, b"k", T(5), self._resolve) is None

    def test_missing_key(self):
        page = self._page()
        assert version_as_of(page, b"nope", T(25), self._resolve) is None

    def test_delete_stub_returned_raw(self):
        page = self._page()
        stub = RecordVersion.new(b"k", b"", tid=1, delete_stub=True)
        stub.stamp(T(40))
        page.insert_version(stub)
        got = version_as_of(page, b"k", T(45), self._resolve)
        assert got.is_delete_stub
