"""Tests for timestamps and the simulated clock (paper Section 2.1)."""

from __future__ import annotations

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.clock import (
    EPOCH,
    SN_INVALID,
    TICK_MS,
    TID_FLAG,
    SimClock,
    Timestamp,
    encode_tid_field,
    field_is_tid,
    field_tid,
)


class TestTimestamp:
    def test_ordering_is_lexicographic(self):
        assert Timestamp(1, 5) < Timestamp(2, 0)
        assert Timestamp(1, 5) < Timestamp(1, 6)
        assert Timestamp(3, 0) > Timestamp(2, 0xFFFFFFFF - 1)

    def test_min_and_max_bracket_everything(self):
        ts = Timestamp(12345, 678)
        assert Timestamp.MIN < ts < Timestamp.MAX

    def test_codec_roundtrip(self):
        ts = Timestamp(0x1122334455, 0x66778899)
        assert Timestamp.from_bytes(ts.to_bytes()) == ts

    def test_codec_size_is_twelve_bytes(self):
        # 8-byte Ttime + 4-byte SN, the exact Figure 1b layout.
        assert len(Timestamp(1, 1).to_bytes()) == Timestamp.SIZE == 12

    def test_rejects_wrong_image_size(self):
        with pytest.raises(ValueError):
            Timestamp.from_bytes(b"\x00" * 11)

    def test_rejects_out_of_range_fields(self):
        with pytest.raises(ValueError):
            Timestamp(-1, 0)
        with pytest.raises(ValueError):
            Timestamp(0, 1 << 32)

    def test_datetime_roundtrip_at_tick_resolution(self):
        when = EPOCH + dt.timedelta(seconds=90)
        ts = Timestamp.from_datetime(when)
        assert ts.to_datetime() == when

    def test_datetime_before_epoch_rejected(self):
        with pytest.raises(ValueError):
            Timestamp.from_datetime(EPOCH - dt.timedelta(seconds=1))

    @given(st.integers(0, 2**62), st.integers(0, 2**32 - 1))
    def test_codec_roundtrip_property(self, ttime, sn):
        ts = Timestamp(ttime, sn)
        assert Timestamp.from_bytes(ts.to_bytes()) == ts

    @given(
        st.tuples(st.integers(0, 2**40), st.integers(0, 2**32 - 1)),
        st.tuples(st.integers(0, 2**40), st.integers(0, 2**32 - 1)),
    )
    def test_bytes_order_matches_value_order(self, a, b):
        """Encoded timestamps compare like the timestamps themselves."""
        ta, tb = Timestamp(*a), Timestamp(*b)
        assert (ta.to_bytes() < tb.to_bytes()) == (ta < tb)


class TestTidTagging:
    def test_tid_field_roundtrip(self):
        field = encode_tid_field(42)
        assert field_is_tid(field)
        assert field_tid(field) == 42

    def test_plain_time_is_not_tid(self):
        assert not field_is_tid(123456)

    def test_tid_flag_is_high_bit(self):
        assert encode_tid_field(1) == TID_FLAG | 1

    def test_zero_tid_rejected(self):
        with pytest.raises(ValueError):
            encode_tid_field(0)

    def test_extracting_tid_from_time_rejected(self):
        with pytest.raises(ValueError):
            field_tid(99)


class TestSimClock:
    def test_timestamps_are_unique_and_increasing(self):
        clock = SimClock()
        seen = [clock.next_timestamp() for _ in range(1000)]
        assert seen == sorted(seen)
        assert len(set(seen)) == 1000

    def test_sequence_number_extends_the_20ms_tick(self):
        clock = SimClock()
        a = clock.next_timestamp()
        b = clock.next_timestamp()
        assert a.ttime == b.ttime  # same tick
        assert b.sn == a.sn + 1    # distinguished by SN (Section 2.1)

    def test_advance_resets_sequence_numbers(self):
        clock = SimClock()
        clock.next_timestamp()
        clock.next_timestamp()
        clock.advance_ticks(1)
        assert clock.next_timestamp().sn == 1

    def test_advance_ms_converts_to_ticks(self):
        clock = SimClock(start_tick=1)
        clock.advance_ms(TICK_MS * 3)
        assert clock.tick == 4

    def test_fractional_ms_accumulates(self):
        clock = SimClock(start_tick=1)
        for _ in range(TICK_MS * 2):
            clock.advance_ms(0.5)
        assert clock.tick == 2

    def test_time_cannot_go_backwards(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance_ms(-1)
        with pytest.raises(ValueError):
            clock.advance_ticks(-1)

    def test_now_does_not_consume_sequence_numbers(self):
        clock = SimClock()
        now1 = clock.now()
        now2 = clock.now()
        assert now1 == now2
        issued = clock.next_timestamp()
        assert issued > now1  # future commits are strictly after now()

    def test_issued_timestamps_exceed_earlier_now(self):
        """now() < every timestamp issued later — snapshot horizons rely on it.
        And now() >= every timestamp issued before: inclusive horizons work."""
        clock = SimClock()
        earlier = clock.next_timestamp()
        horizon = clock.now()
        later = [clock.next_timestamp() for _ in range(3)]
        clock.advance_ticks(1)
        later.append(clock.next_timestamp())
        assert earlier <= horizon
        assert all(ts > horizon for ts in later)

    def test_ms_per_timestamp_advances_time(self):
        clock = SimClock(ms_per_timestamp=TICK_MS)
        first = clock.next_timestamp()
        second = clock.next_timestamp()
        assert second.ttime == first.ttime + 1

    def test_sn_invalid_is_never_issued(self):
        clock = SimClock()
        clock._issued_sn = SN_INVALID - 2
        a = clock.next_timestamp()
        b = clock.next_timestamp()
        assert a.sn == SN_INVALID - 1
        assert b.ttime == a.ttime + 1 and b.sn == 1

    def test_start_tick_zero_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_tick=0)
