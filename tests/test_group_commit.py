"""Group commit: batching, durable acks, crash semantics, stamping gate.

The engine's ``group_commit_window`` batches commit-time log forces: commits
enqueue their (already appended) commit records and a single force durably
acknowledges the whole batch.  These tests pin down the contract:

* forces drop by ~the window factor while every commit still gets acked,
* a crash between enqueue and force rolls the un-acked batch back cleanly,
* lazy stamping refuses to stamp versions whose commit record is not yet
  durable (stamping is never logged, so a stamped version reaching disk
  ahead of its commit record would survive a crash that rolls it back),
* the fault-injection harness stays clean with group commit enabled,
  including at the new ``txn.groupcommit.*`` failpoints.
"""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB
from repro.faults.crashtest import CrashTestConfig, enumerate_crossings, explore

COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


def make_db(window: int) -> ImmortalDB:
    return ImmortalDB(buffer_pages=64, group_commit_window=window)


def make_table(db: ImmortalDB):
    return db.create_table("t", COLS, key="k", immortal=True)


def insert_one(db, table, k: int) -> None:
    with db.transaction() as txn:
        table.insert(txn, {"k": k, "v": f"v{k}"})


class TestBatching:
    def test_full_window_forces_once(self):
        db = make_db(4)
        table = make_table(db)
        before = db.log.stats.forces
        for k in range(8):
            insert_one(db, table, k)
        assert db.log.stats.forces - before == 2
        assert db.txn_mgr.group_commit_acks == 8
        assert db.txn_mgr.unacked_commits == 0

    def test_partial_batch_waits_for_flush(self):
        db = make_db(4)
        table = make_table(db)
        before = db.log.stats.forces
        insert_one(db, table, 1)
        insert_one(db, table, 2)
        assert db.log.stats.forces == before
        assert db.txn_mgr.unacked_commits == 2
        assert db.txn_mgr.group_commit_acks == 0
        db.flush_commits()
        assert db.log.stats.forces == before + 1
        assert db.txn_mgr.unacked_commits == 0
        assert db.txn_mgr.group_commit_acks == 2

    def test_window_one_forces_every_commit(self):
        db = make_db(1)
        table = make_table(db)
        before = db.log.stats.forces
        for k in range(3):
            insert_one(db, table, k)
        assert db.log.stats.forces - before == 3
        assert db.txn_mgr.unacked_commits == 0

    def test_flush_commits_is_a_noop_when_drained(self):
        db = make_db(4)
        make_table(db)
        before = db.log.stats.forces
        db.flush_commits()
        assert db.log.stats.forces == before

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            make_db(0)

    def test_commit_returns_timestamp_before_force(self):
        """Late choice is unchanged: the timestamp exists at enqueue time."""
        db = make_db(8)
        table = make_table(db)
        txn = db.begin()
        table.insert(txn, {"k": 1, "v": "a"})
        ts = db.commit(txn)
        assert ts is not None
        assert db.txn_mgr.unacked_commits == 1

    def test_durable_hook_fires_in_commit_order(self):
        db = make_db(4)
        table = make_table(db)
        acked: list[int] = []
        db.txn_mgr.durable_commit_hook = lambda txn: acked.append(txn.tid)
        tids = []
        for k in range(4):
            txn = db.begin()
            table.insert(txn, {"k": k, "v": "x"})
            tids.append(txn.tid)
            db.commit(txn)
        assert acked == tids

    def test_locks_release_at_enqueue(self):
        """Early lock release: a later txn can touch the key before the
        batch is forced — its commit record lands later in the log, so
        durability order still matches commit order."""
        db = make_db(8)
        table = make_table(db)
        insert_one(db, table, 1)
        assert db.txn_mgr.unacked_commits == 1
        with db.transaction() as txn:     # would deadlock if locks lingered
            table.update(txn, 1, {"v": "second"})
        assert db.txn_mgr.unacked_commits == 2


class TestCrashSemantics:
    def test_unforced_batch_rolls_back(self):
        db = make_db(8)
        table = make_table(db)
        insert_one(db, table, 1)
        insert_one(db, table, 2)
        assert db.txn_mgr.unacked_commits == 2
        db.crash_and_recover()
        table = db.table("t")
        with db.transaction() as txn:
            assert table.read(txn, 1) is None
            assert table.read(txn, 2) is None

    def test_forced_batch_survives(self):
        db = make_db(4)
        table = make_table(db)
        for k in range(4):                # fills the window -> forced
            insert_one(db, table, k)
        db.crash_and_recover()
        table = db.table("t")
        with db.transaction() as txn:
            assert len(table.scan(txn)) == 4

    def test_crash_loses_exactly_the_unforced_suffix(self):
        db = make_db(4)
        table = make_table(db)
        for k in range(4):                # forced batch
            insert_one(db, table, k)
        insert_one(db, table, 4)          # enqueued only
        insert_one(db, table, 5)
        db.crash_and_recover()
        table = db.table("t")
        with db.transaction() as txn:
            rows = {r["k"] for r in table.scan(txn)}
        assert rows == {0, 1, 2, 3}

    def test_page_flush_forces_wal_and_acks_batch(self):
        """WAL rule: flushing a page forces the log first, which (forces
        being all-or-nothing) also makes the pending batch durable."""
        db = make_db(8)
        table = make_table(db)
        insert_one(db, table, 1)
        assert db.txn_mgr.unacked_commits == 1
        db.buffer.flush_all()
        assert db.txn_mgr.unacked_commits == 0
        db.crash_and_recover()
        table = db.table("t")
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == "v1"


class TestStampingGate:
    def test_stamping_declines_while_commit_unforced(self):
        db = make_db(8)
        table = make_table(db)
        insert_one(db, table, 1)
        assert db.txn_mgr.unacked_commits == 1
        pages = [
            p for p in db.buffer.cached_pages()
            if getattr(p, "table_id", None) and p.has_unstamped_records()
        ]
        assert pages, "expected an unstamped data page in the pool"
        assert sum(db.tsmgr.stamp_page(p) for p in pages) == 0
        db.flush_commits()
        assert sum(db.tsmgr.stamp_page(p) for p in pages) >= 1

    def test_flush_hook_leaves_unforced_versions_unstamped(self):
        """The pre-flush stamping hook runs before the WAL force, so a
        version of an un-acked commit reaches disk unstamped — and the
        as-of read path still resolves it through the PTT afterwards."""
        db = make_db(8)
        table = make_table(db)
        stamps_before = db.tsmgr.stats.stamps
        insert_one(db, table, 1)
        db.buffer.flush_all()
        # The hook saw the version before the force: it must have declined.
        assert db.tsmgr.stats.stamps == stamps_before
        db.crash_and_recover()
        table = db.table("t")
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == "v1"


class TestCrashExploration:
    # Mirrors SMALL in test_crashtest.py, with a group-commit window.
    CONFIG = CrashTestConfig(
        seed=0, transactions=18, keys=8, checkpoint_every=5, mark_every=3,
        buffer_pages=6, value_pad=500, group_commit_window=4,
    )

    def test_groupcommit_seams_enumerated(self):
        names = set(enumerate_crossings(self.CONFIG))
        assert "txn.groupcommit.enqueue" in names
        assert "txn.groupcommit.force" in names
        assert "txn.groupcommit.ack" in names

    def test_sampled_exploration_is_clean(self):
        result = explore(self.CONFIG, max_points=40)
        assert result.ok, [
            (r.crossing, r.name, r.problems) for r in result.failures
        ]
        assert any(n.startswith("txn.groupcommit") for n in result.by_name)
