"""Tests for AS OF queries, time travel, and the TSB-indexed path."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB, Timestamp, TxnMode


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


def build_versioned_db(*, use_tsb=False, keys=10, rounds=30, gap_ms=500):
    """A table where every key has `rounds` versions at known times."""
    db = ImmortalDB(buffer_pages=128, use_tsb_index=use_tsb)
    table = db.create_table("t", COLS, key="k", immortal=True)
    marks = []
    with db.transaction() as txn:
        for k in range(keys):
            table.insert(txn, {"k": k, "v": "r-1"})
    for r in range(rounds):
        db.advance_time(gap_ms)
        marks.append(db.now())
        with db.transaction() as txn:
            for k in range(keys):
                table.update(txn, k, {"v": f"r{r}-" + "x" * 60})
    return db, table, marks


class TestPointAsOf:
    def test_every_round_retrievable(self):
        db, table, marks = build_versioned_db()
        # marks[r] is taken *before* round r's updates commit.
        for r in (0, 10, 29):
            row = table.read_as_of(marks[r], 3)
            expected = "r-1" if r == 0 else f"r{r - 1}-" + "x" * 60
            assert row["v"] == expected, r

    def test_before_table_had_data(self):
        db, table, marks = build_versioned_db()
        assert table.read_as_of(Timestamp(1, 0), 3) is None

    def test_after_latest_sees_current(self):
        db, table, marks = build_versioned_db()
        db.advance_time(10_000)
        row = table.read_as_of(db.now(), 3)
        assert row["v"].startswith("r29-")

    def test_asof_of_deleted_record_is_none(self):
        db = ImmortalDB()
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "alive"})
        alive_at = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.delete(txn, 1)
        db.advance_time(1000)
        dead_at = db.now()
        assert table.read_as_of(alive_at, 1)["v"] == "alive"
        assert table.read_as_of(dead_at, 1) is None

    def test_chain_hops_grow_with_depth(self):
        """Fig 6's driver: older as-of times walk longer page chains."""
        db, table, marks = build_versioned_db(keys=4, rounds=120, gap_ms=500)
        assert table.btree.stats.time_splits >= 3
        db.asof_stats.chain_hops = 0
        table.read_as_of(marks[-1], 0)
        recent_hops = db.asof_stats.chain_hops
        db.asof_stats.chain_hops = 0
        table.read_as_of(marks[1], 0)
        old_hops = db.asof_stats.chain_hops
        assert old_hops > recent_hops


class TestScanAsOf:
    def test_full_scan_reconstructs_each_round(self):
        db, table, marks = build_versioned_db(keys=8, rounds=20)
        for r in (1, 10, 19):
            rows = table.scan_as_of(marks[r])
            assert len(rows) == 8
            assert all(row["v"] == f"r{r - 1}-" + "x" * 60 for row in rows)

    def test_scan_asof_sees_deleted_records_in_their_era(self):
        db = ImmortalDB()
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            for k in range(6):
                table.insert(txn, {"k": k, "v": "era1"})
        era1 = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            for k in range(0, 6, 2):
                table.delete(txn, k)
        era2 = db.now()
        assert len(table.scan_as_of(era1)) == 6
        assert len(table.scan_as_of(era2)) == 3

    def test_scan_asof_with_key_splits_does_not_duplicate(self):
        """Sibling leaves share history pages; bounds must dedupe them."""
        db = ImmortalDB(buffer_pages=256)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            for k in range(200):
                table.insert(txn, {"k": k, "v": "base" + "x" * 40})
        base = db.now()
        for r in range(10):
            db.advance_time(500)
            with db.transaction() as txn:
                for k in range(200):
                    table.update(txn, k, {"v": f"r{r}" + "y" * 40})
        assert table.btree.stats.key_splits >= 1
        rows = table.scan_as_of(base)
        assert len(rows) == 200
        assert len({row["k"] for row in rows}) == 200


class TestHistory:
    def test_history_returns_all_versions_in_order(self):
        db, table, marks = build_versioned_db(keys=2, rounds=15)
        history = table.history(1)
        assert len(history) == 16  # insert + 15 updates
        times = [ts for ts, _ in history]
        assert times == sorted(times)
        assert history[0][1]["v"] == "r-1"
        assert history[-1][1]["v"].startswith("r14-")

    def test_history_spans_time_split_pages_without_duplicates(self):
        db, table, marks = build_versioned_db(keys=2, rounds=150, gap_ms=500)
        assert table.btree.stats.time_splits >= 2
        history = table.history(1)
        assert len(history) == 151
        assert len({ts for ts, _ in history}) == 151

    def test_history_records_deletes_as_none(self):
        db = ImmortalDB()
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        db.advance_time(100)
        with db.transaction() as txn:
            table.delete(txn, 1)
        history = table.history(1)
        assert history[0][1]["v"] == "a"
        assert history[1][1] is None

    def test_history_time_bounds(self):
        db, table, marks = build_versioned_db(keys=1, rounds=10)
        bounded = table.history(0, t_low=marks[3], t_high=marks[7])
        assert 0 < len(bounded) < 11
        for ts, _ in bounded:
            assert marks[3] <= ts <= marks[7]


class TestTSBIndexedAsOf:
    def test_tsb_results_match_chain_results(self):
        kwargs = dict(keys=6, rounds=100, gap_ms=500)
        db_chain, table_chain, marks = build_versioned_db(**kwargs)
        db_tsb, table_tsb, marks_tsb = build_versioned_db(use_tsb=True, **kwargs)
        assert marks == marks_tsb  # deterministic clocks
        for r in (1, 25, 50, 99):
            for k in (0, 5):
                a = table_chain.read_as_of(marks[r], k)
                b = table_tsb.read_as_of(marks[r], k)
                assert a == b, (r, k)

    def test_tsb_lookup_avoids_chain_walk(self):
        db, table, marks = build_versioned_db(
            use_tsb=True, keys=4, rounds=150, gap_ms=500
        )
        db.asof_stats.chain_hops = 0
        db.asof_stats.tsb_lookups = 0
        table.read_as_of(marks[1], 0)   # deep history
        assert db.asof_stats.tsb_lookups == 1
        assert db.asof_stats.chain_hops == 0

    def test_tsb_index_populated_by_time_splits(self):
        db, table, marks = build_versioned_db(
            use_tsb=True, keys=4, rounds=150, gap_ms=500
        )
        assert table.history_index is not None
        assert (
            table.history_index.leaf_entry_count()
            == table.btree.stats.time_splits
        )

    def test_tsb_survives_crash(self):
        db, table, marks = build_versioned_db(
            use_tsb=True, keys=4, rounds=100, gap_ms=500
        )
        expected = table.read_as_of(marks[10], 2)
        db.crash_and_recover()
        table = db.table("t")
        assert table.history_index is not None
        assert table.read_as_of(marks[10], 2) == expected


class TestTimestampConversion:
    def test_begin_as_of_accepts_strings(self):
        db = ImmortalDB()
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "x"})
        wall = db.clock.now_datetime()
        db.advance_time(60_000)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "y"})
        with db.transaction(as_of=wall.isoformat()) as txn:
            assert table.read(txn, 1)["v"] == "x"
