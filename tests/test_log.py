"""Tests for the log manager: LSNs, durability, crash truncation."""

from __future__ import annotations

import pytest

from repro.errors import WALError
from repro.wal.log import LogManager
from repro.wal.records import BeginTxn, CheckpointEnd, CommitTxn


class TestAppend:
    def test_lsns_are_byte_offsets(self):
        log = LogManager()
        a = log.append(BeginTxn(tid=1))
        b = log.append(BeginTxn(tid=2))
        assert a == LogManager.HEADER_BYTES
        assert b > a
        assert log.end_lsn > b

    def test_no_record_gets_lsn_zero(self):
        log = LogManager()
        assert log.append(BeginTxn(tid=1)) > 0

    def test_next_lsn_predicts_append(self):
        log = LogManager()
        predicted = log.next_lsn
        assert log.append(BeginTxn(tid=1)) == predicted

    def test_stats_track_bytes(self):
        log = LogManager()
        log.append(BeginTxn(tid=1))
        assert log.stats.appends == 1
        assert log.stats.bytes_appended == log.end_lsn - LogManager.HEADER_BYTES


class TestScan:
    def test_records_from_start(self):
        log = LogManager()
        for tid in (1, 2, 3):
            log.append(BeginTxn(tid=tid))
        assert [r.tid for r in log.records_from(0)] == [1, 2, 3]

    def test_records_from_middle(self):
        log = LogManager()
        log.append(BeginTxn(tid=1))
        mid = log.append(BeginTxn(tid=2))
        log.append(BeginTxn(tid=3))
        assert [r.tid for r in log.records_from(mid)] == [2, 3]

    def test_scan_decodes_payloads(self):
        log = LogManager()
        log.append(CommitTxn(tid=5, ttime=77, sn=3, ptt=True))
        rec = next(iter(log.records_from(0)))
        assert isinstance(rec, CommitTxn)
        assert (rec.ttime, rec.sn, rec.ptt) == (77, 3, True)

    def test_record_at_exact_lsn(self):
        log = LogManager()
        lsn = log.append(BeginTxn(tid=9))
        assert log.record_at(lsn).tid == 9

    def test_record_at_bogus_lsn_fails(self):
        log = LogManager()
        log.append(BeginTxn(tid=1))
        with pytest.raises(WALError):
            log.record_at(5)

    def test_scanned_records_carry_their_lsn(self):
        log = LogManager()
        lsns = [log.append(BeginTxn(tid=t)) for t in (1, 2)]
        assert [r.lsn for r in log.records_from(0)] == lsns


class TestDurability:
    def test_force_advances_flushed_lsn(self):
        log = LogManager()
        log.append(BeginTxn(tid=1))
        log.force()
        assert log.flushed_lsn == log.end_lsn

    def test_redundant_force_not_counted(self):
        log = LogManager()
        log.append(BeginTxn(tid=1))
        log.force()
        log.force()
        assert log.stats.forces == 1

    def test_force_up_to_lsn(self):
        log = LogManager()
        a = log.append(BeginTxn(tid=1))
        log.force(a)
        assert log.flushed_lsn >= a

    def test_crash_discards_unforced_suffix(self):
        log = LogManager()
        log.append(BeginTxn(tid=1))
        log.force()
        log.append(BeginTxn(tid=2))  # never forced
        log.crash()
        assert [r.tid for r in log.records_from(0)] == [1]

    def test_crash_then_append_continues(self):
        log = LogManager()
        log.append(BeginTxn(tid=1))
        log.force()
        log.append(BeginTxn(tid=2))
        log.crash()
        log.append(BeginTxn(tid=3))
        assert [r.tid for r in log.records_from(0)] == [1, 3]

    def test_crash_with_nothing_forced_empties_log(self):
        log = LogManager()
        log.append(BeginTxn(tid=1))
        log.crash()
        assert len(log) == 0


class TestMasterRecord:
    def test_master_requires_durable_checkpoint(self):
        log = LogManager()
        lsn = log.append(CheckpointEnd(begin_lsn=0))
        with pytest.raises(WALError):
            log.set_master_checkpoint(lsn)
        log.force()
        log.set_master_checkpoint(lsn)
        assert log.master_checkpoint_lsn == lsn
