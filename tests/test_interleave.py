"""Scripted interleavings under the deterministic scheduler.

Each scenario pins one concurrency-sensitive ordering — write-write
conflict, deadlock cycle, commit racing a scan, abort racing a group
commit — and asserts both the outcome and (where it matters) the exact
schedule trace, so a regression shows up as a changed schedule rather
than a flaky stress failure.
"""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB
from repro.core.integrity import verify_integrity
from repro.errors import ConcurrencyError, DeadlockError
from repro.faults.failpoints import FailpointRegistry, installed
from repro.workers.interleave import InterleaveScheduler
from repro.workers.sweep import run_one

COLS = [("k", ColumnType.INT), ("v", ColumnType.INT)]


def _make_db(**kwargs) -> tuple[ImmortalDB, object]:
    db = ImmortalDB(buffer_pages=64, **kwargs)
    table = db.create_table("t", COLS, key="k", immortal=True)
    with db.transaction() as txn:
        for k in range(8):
            table.insert(txn, {"k": k, "v": 0})
    db.flush_commits()
    return db, table


class TestScriptedScenarios:
    def test_write_write_conflict_blocks_then_serializes(self):
        db, table = _make_db()
        order: list[str] = []

        def a(ctx):
            txn = db.begin()
            table.update(txn, 0, {"v": table.read(txn, 0)["v"] + 1})
            order.append("a-updated")
            ctx.pause(to="B")          # let B run into our X lock
            db.commit(txn)
            order.append("a-committed")

        def b(ctx):
            txn = db.begin()
            order.append("b-before-update")
            table.update(txn, 0, {"v": table.read(txn, 0)["v"] + 1})
            order.append("b-updated")   # only after A released its lock
            db.commit(txn)
            order.append("b-committed")

        sched = InterleaveScheduler(db)
        sched.spawn("A", a)
        sched.spawn("B", b)
        sched.run()

        assert order == [
            "a-updated", "b-before-update", "a-committed",
            "b-updated", "b-committed",
        ]
        with db.transaction() as txn:
            assert table.read(txn, 0)["v"] == 2
        assert sched.trace == [
            "run A", "pause A", "run B", "block B",
            "run A", "wake B", "done A", "run B", "done B",
        ]

    def test_deadlock_cycle_victim_aborts_survivor_commits(self):
        db, table = _make_db()
        outcome: dict[str, str] = {}

        def a(ctx):
            txn = db.begin()
            table.update(txn, 0, {"v": 1})
            ctx.pause(to="B")           # B takes k1, then blocks on k0
            # Closing the cycle: we are the detector; B (younger) dies.
            table.update(txn, 1, {"v": 1})
            db.commit(txn)
            outcome["A"] = "committed"

        def b(ctx):
            txn = db.begin()
            table.update(txn, 1, {"v": 2})
            try:
                table.update(txn, 0, {"v": 2})   # blocks behind A
                db.commit(txn)
                outcome["B"] = "committed"
            except DeadlockError as exc:
                assert exc.victim_tid == txn.tid
                db.abort(txn)
                outcome["B"] = "victim"

        sched = InterleaveScheduler(db)
        sched.spawn("A", a)
        sched.spawn("B", b)
        sched.run()

        assert outcome == {"A": "committed", "B": "victim"}
        assert db.stats()["deadlocks_detected"] == 1
        with db.transaction() as txn:
            assert table.read(txn, 0)["v"] == 1   # A's write
            assert table.read(txn, 1)["v"] == 1   # B's was rolled back
        assert verify_integrity(db) == []

    def test_commit_during_scan_waits_for_table_lock(self):
        """A serializable scan's table-S lock holds writers out until the
        scanning transaction commits — no write skew past a scan."""
        db, table = _make_db()
        seen: dict[str, object] = {}

        def scanner(ctx):
            txn = db.begin()
            rows = table.scan(txn)             # takes table S
            seen["scan"] = sum(r["v"] for r in rows)
            ctx.pause(to="writer")             # writer blocks on its IX
            seen["rescan"] = sum(r["v"] for r in table.scan(txn))
            db.commit(txn)                     # releases S; writer wakes

        def writer(ctx):
            txn = db.begin()
            table.update(txn, 3, {"v": 10})    # IX vs S: parked
            db.commit(txn)
            seen["writer-done"] = True

        sched = InterleaveScheduler(db)
        sched.spawn("scanner", scanner)
        sched.spawn("writer", writer)
        sched.run()

        assert seen["scan"] == 0
        assert seen["rescan"] == 0     # repeatable: writer never slipped in
        assert seen["writer-done"]
        assert db.stats()["lock_waits"] >= 1
        with db.transaction() as txn:
            assert table.read(txn, 3)["v"] == 10

    def test_abort_during_group_commit_window(self):
        """A volatile (unforced) commit and a racing abort share a window:
        the commit must survive the flush, the abort must roll back."""
        db, table = _make_db(group_commit_window=4)
        tss: dict[str, object] = {}

        def a(ctx):
            txn = db.begin()
            table.update(txn, 0, {"v": 7})
            tss["A"] = db.commit(txn)   # volatile: window not full
            ctx.pause(to="B")

        def b(ctx):
            txn = db.begin()
            table.update(txn, 1, {"v": 8})
            db.abort(txn)               # abort rides the same window

        sched = InterleaveScheduler(db)
        sched.spawn("A", a)
        sched.spawn("B", b)
        sched.run()
        db.flush_commits()

        assert db.txn_mgr.unacked_commits == 0
        with db.transaction() as txn:
            assert table.read(txn, 0)["v"] == 7    # durable
            assert table.read(txn, 1)["v"] == 0    # rolled back
        assert table.read_as_of(tss["A"], 0)["v"] == 7
        assert verify_integrity(db) == []

    def test_pause_to_blocked_peer_is_a_script_bug(self):
        db, table = _make_db()

        def a(ctx):
            txn = db.begin()
            table.update(txn, 0, {"v": 1})
            ctx.pause(to="B")
            try:
                ctx.pause(to="B")       # B is blocked on our lock: bug
                db.commit(txn)
            except ConcurrencyError:
                db.abort(txn)           # unblocks B; the error resurfaces
                raise

        def b(ctx):
            with db.transaction() as txn:
                table.update(txn, 0, {"v": 2})

        sched = InterleaveScheduler(db)
        sched.spawn("A", a)
        sched.spawn("B", b)
        with pytest.raises(ConcurrencyError, match="cannot hand the token"):
            sched.run()


class TestDeterminism:
    def _trace_once(self, seed: int) -> list[str]:
        db, table = _make_db()
        sched = InterleaveScheduler(db, seed=seed, switch_probability=0.5)
        registry = FailpointRegistry()
        sched.attach_failpoints(registry)

        def worker(base: int):
            def body(ctx):
                for i in range(3):
                    txn = db.begin()
                    try:
                        k = (base + i) % 4
                        row = table.read(txn, k)
                        table.update(txn, k, {"v": row["v"] + 1})
                        db.commit(txn)
                    except ConcurrencyError:
                        db.abort(txn)
                    ctx.pause()
            return body

        sched.spawn("P", worker(0))
        sched.spawn("Q", worker(2))
        sched.spawn("R", worker(1))
        with installed(registry):
            sched.run()
        return list(sched.trace)

    def test_same_seed_same_trace(self):
        assert self._trace_once(7) == self._trace_once(7)

    def test_different_seed_different_trace(self):
        # Not guaranteed in principle, but with preemption at every
        # failpoint crossing these seeds do diverge — a tripwire for an
        # RNG that stopped being consulted.
        assert self._trace_once(3) != self._trace_once(4)


class TestSweepSmoke:
    def test_forced_deadlock_seed_is_clean(self):
        report = run_one(0, scripts=2, txns=2)   # seed 0: forced round
        assert report["forced_deadlock"]
        assert report["deadlocks_detected"] >= 1
        assert report["violations"] == []

    def test_random_seed_is_clean_and_reproducible(self):
        first = run_one(5, scripts=3, txns=3)
        second = run_one(5, scripts=3, txns=3)
        assert first["violations"] == []
        assert first == second
