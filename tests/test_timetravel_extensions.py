"""Tests for the time-travel surface: range scans, diffs, inspection, SQL."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB, TxnMode
from repro.core.inspect import format_report, inspect_table
from repro.errors import SQLExecutionError
from repro.sql import Session


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


@pytest.fixture
def db():
    return ImmortalDB(buffer_pages=128)


@pytest.fixture
def table(db):
    return db.create_table("t", COLS, key="k", immortal=True)


class TestScanRange:
    def _seed(self, db, table, n=50):
        with db.transaction() as txn:
            for k in range(n):
                table.insert(txn, {"k": k, "v": f"v{k}"})

    def test_closed_range(self, db, table):
        self._seed(db, table)
        with db.transaction() as txn:
            rows = table.scan_range(txn, 10, 14)
        assert [r["k"] for r in rows] == [10, 11, 12, 13, 14]

    def test_open_ends(self, db, table):
        self._seed(db, table)
        with db.transaction() as txn:
            assert [r["k"] for r in table.scan_range(txn, 47, None)] == \
                [47, 48, 49]
            assert [r["k"] for r in table.scan_range(txn, None, 2)] == \
                [0, 1, 2]

    def test_range_spanning_leaf_splits(self, db, table):
        with db.transaction() as txn:
            for k in range(400):
                table.insert(txn, {"k": k, "v": "x" * 60})
        assert table.btree.stats.key_splits >= 1
        with db.transaction() as txn:
            rows = table.scan_range(txn, 150, 250)
        assert [r["k"] for r in rows] == list(range(150, 251))

    def test_range_respects_snapshot_horizon(self, db, table):
        self._seed(db, table, n=10)
        reader = db.begin(TxnMode.SNAPSHOT)
        with db.transaction() as txn:
            table.update(txn, 5, {"v": "changed"})
            table.delete(txn, 6)
        rows = table.scan_range(reader, 4, 7)
        assert [r["k"] for r in rows] == [4, 5, 6, 7]
        assert rows[1]["v"] == "v5"
        db.commit(reader)

    def test_range_as_of(self, db, table):
        self._seed(db, table, n=10)
        mark = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.delete(txn, 3)
        with db.transaction(as_of=mark) as historical:
            rows = table.scan_range(historical, 2, 4)
        assert [r["k"] for r in rows] == [2, 3, 4]

    def test_empty_range(self, db, table):
        self._seed(db, table, n=5)
        with db.transaction() as txn:
            assert table.scan_range(txn, 100, 200) == []


class TestChangesBetween:
    def test_diff_captures_all_change_kinds(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "same"})
            table.insert(txn, {"k": 2, "v": "old"})
            table.insert(txn, {"k": 3, "v": "doomed"})
        t1 = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.update(txn, 2, {"v": "new"})
            table.delete(txn, 3)
            table.insert(txn, {"k": 4, "v": "born"})
        t2 = db.now()
        diff = table.changes_between(t1, t2)
        assert set(diff) == {2, 3, 4}
        assert diff[2] == ({"k": 2, "v": "old"}, {"k": 2, "v": "new"})
        assert diff[3][1] is None
        assert diff[4][0] is None and diff[4][1]["v"] == "born"

    def test_no_changes_empty_diff(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "x"})
        t1 = db.now()
        db.advance_time(1000)
        t2 = db.now()
        assert table.changes_between(t1, t2) == {}

    def test_reversed_bounds_rejected(self, db, table):
        t1 = db.now()
        db.advance_time(1000)
        t2 = db.now()
        with pytest.raises(SQLExecutionError):
            table.changes_between(t2, t1)


class TestInspection:
    def test_counts_match_reality(self, db, table):
        with db.transaction() as txn:
            for k in range(30):
                table.insert(txn, {"k": k, "v": "x" * 40})
        for r in range(80):
            db.advance_time(500)
            with db.transaction() as txn:
                table.update(txn, r % 30, {"v": f"{r}" + "y" * 40})
        with db.transaction() as txn:
            table.delete(txn, 0)
        with db.transaction() as txn:
            table.read(txn, 1)  # stamping trigger

        info = inspect_table(table)
        assert info.table_name == "t"
        assert info.immortal
        assert info.live_records == 29
        assert info.current_pages >= 1
        assert info.history_pages == table.btree.stats.time_splits
        assert info.delete_stubs >= 1
        assert info.total_versions >= 111   # 30 + 80 + 1 stub (+ copies)
        assert info.oldest_version is not None
        assert info.oldest_version < info.newest_version
        assert 0 < info.timeslice_utilization <= info.current_utilization <= 1

    def test_redundant_copies_counted(self, db, table):
        """Case-2 spanning duplicates show up once splits happen."""
        with db.transaction() as txn:
            for k in range(20):
                table.insert(txn, {"k": k, "v": "x" * 100})
        for r in range(200):
            db.advance_time(500)
            with db.transaction() as txn:
                table.update(txn, r % 20, {"v": f"{r}" + "y" * 100})
        info = inspect_table(table)
        assert info.history_pages >= 1
        assert info.redundant_copies >= 1

    def test_report_renders(self, db, table):
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        report = format_report(inspect_table(table))
        assert "table 't'" in report
        assert "immortal" in report


class TestSelectHistorySQL:
    def _session(self, db):
        session = Session(db)
        session.execute(
            "CREATE IMMORTAL TABLE T (k INT PRIMARY KEY, v TEXT)"
        )
        session.execute("INSERT INTO T VALUES (1, 'first')")
        db.advance_time(60_000)
        session.execute("UPDATE T SET v = 'second' WHERE k = 1")
        db.advance_time(60_000)
        session.execute("DELETE FROM T WHERE k = 1")
        return session

    def test_history_returns_all_versions(self, db):
        session = self._session(db)
        rows = session.execute("SELECT HISTORY OF T WHERE k = 1").rows
        assert len(rows) == 3
        assert rows[0]["v"] == "first" and not rows[0]["_deleted"]
        assert rows[1]["v"] == "second"
        assert rows[2]["_deleted"]

    def test_history_with_time_bounds(self, db):
        session = self._session(db)
        rows = session.execute(
            "SELECT HISTORY OF T WHERE k = 1 "
            "FROM '2006-01-01 00:00:30' TO '2006-01-01 00:01:30'"
        ).rows
        assert len(rows) == 1
        assert rows[0]["v"] == "second"

    def test_history_needs_key_equality(self, db):
        session = self._session(db)
        with pytest.raises(SQLExecutionError):
            session.execute("SELECT HISTORY OF T WHERE v = 'first'")

    def test_history_of_missing_key_is_empty(self, db):
        session = self._session(db)
        assert session.execute("SELECT HISTORY OF T WHERE k = 99").rows == []
