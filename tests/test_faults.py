"""Failpoint registry and fault-model tests.

Covers: determinism of seeded fire schedules, the crash/arming policies,
zero-cost behavior when no registry is installed, every FaultyDisk fault
model in isolation, page CRC32 checksums (stamp, verify, detection of torn
writes and bit-rot), and the torn-log-tail injector.
"""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB
from repro.errors import ChecksumError, InjectedIOError
from repro.faults.failpoints import (
    FailpointRegistry,
    SimulatedCrash,
    fire,
    installed,
    installed_registry,
)
from repro.faults.models import FaultyDisk, tear_log_tail
from repro.storage.disk import (
    InMemoryDisk,
    page_checksum,
    stamp_checksum,
    verify_checksum,
)
from repro.storage.page import MetaPage
from repro.wal.filelog import FileLogManager
from repro.wal.records import BeginTxn


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]


def run_small_workload(db: ImmortalDB, table) -> None:
    with db.transaction() as txn:
        table.insert(txn, {"k": 1, "v": "one"})
    with db.transaction() as txn:
        table.update(txn, 1, {"v": "two"})
    db.checkpoint(flush=True)


class TestFailpointRegistry:
    def test_uninstalled_fire_is_a_noop(self):
        assert installed_registry() is None
        fire("anything.at.all")  # must not raise, must not record anywhere

    def test_counts_and_trace(self):
        reg = FailpointRegistry()
        reg.trace_on()
        with installed(reg):
            fire("a")
            fire("b")
            fire("a")
        assert reg.hits == {"a": 2, "b": 1}
        assert reg.crossings == 3
        assert reg.trace == ["a", "b", "a"]

    def test_registry_not_left_installed_after_context(self):
        with installed(FailpointRegistry()):
            assert installed_registry() is not None
        assert installed_registry() is None

    def test_crash_at_global_crossing(self):
        reg = FailpointRegistry()
        reg.crash_at(2)
        with installed(reg), pytest.raises(SimulatedCrash) as exc:
            for name in ("a", "b", "c", "d"):
                fire(name)
        assert exc.value.crossing == 2
        assert exc.value.name == "c"

    def test_crash_on_named_hit(self):
        reg = FailpointRegistry()
        reg.crash_on("b", hit=2)
        with installed(reg), pytest.raises(SimulatedCrash):
            fire("b")
            fire("a")
            fire("b")   # second hit of "b"
            fire("a")

    def test_simulated_crash_passes_through_except_exception(self):
        # A crash models a process kill: `except Exception` must not eat it.
        with pytest.raises(SimulatedCrash):
            try:
                raise SimulatedCrash(0, "x")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash was absorbed by except Exception")

    def test_seeded_probability_schedule_is_deterministic(self):
        def schedule(seed: int) -> list[int]:
            reg = FailpointRegistry(seed=seed)
            fired: list[int] = []
            reg.on("p", lambda event: fired.append(event.crossing),
                   probability=0.4)
            with installed(reg):
                for _ in range(50):
                    fire("p")
            return fired

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_workload_fire_schedule_is_deterministic(self):
        def trace() -> list[str]:
            db = ImmortalDB(buffer_pages=16)
            table = db.create_table("t", COLS, key="k", immortal=True)
            reg = FailpointRegistry()
            reg.trace_on()
            with installed(reg):
                run_small_workload(db, table)
            assert reg.trace is not None
            return reg.trace

        first, second = trace(), trace()
        assert first == second
        assert len(first) > 10
        # The engine threads failpoints through every documented seam.
        seams = {name.split(".")[0] for name in first}
        assert {"log", "txn", "checkpoint", "buffer", "disk"} <= seams

    def test_disabled_failpoints_change_no_engine_counters(self):
        def stats() -> dict:
            db = ImmortalDB(buffer_pages=16)
            table = db.create_table("t", COLS, key="k", immortal=True)
            run_small_workload(db, table)
            return db.stats()

        baseline = stats()
        reg = FailpointRegistry()
        with installed(reg):
            traced = stats()
        assert traced == baseline
        assert reg.crossings > 0


def _meta_image(disk, pid: int, blob: bytes) -> bytes:
    return MetaPage(pid, blob, page_size=disk.page_size).to_bytes()


class TestChecksums:
    def test_stamp_and_verify_roundtrip(self):
        raw = _meta_image(InMemoryDisk(), 1, b"payload")
        stamped = stamp_checksum(raw)
        assert stamped != raw
        verify_checksum(stamped, 1)  # no raise

    def test_zero_field_means_unchecked(self):
        raw = _meta_image(InMemoryDisk(), 1, b"payload")
        verify_checksum(raw, 1)  # codecs serialize CRC as 0: skip verify

    def test_corruption_detected(self):
        raw = stamp_checksum(_meta_image(InMemoryDisk(), 1, b"payload"))
        corrupt = bytearray(raw)
        corrupt[100] ^= 0x40
        with pytest.raises(ChecksumError):
            verify_checksum(bytes(corrupt), 1)

    def test_checksum_never_zero(self):
        assert page_checksum(bytes(8192)) != 0

    def test_engine_flag_survives_full_crash_recovery_cycle(self):
        db = ImmortalDB(buffer_pages=16, page_checksums=True)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "checked"})
        mark = db.now()
        db.advance_time(500)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "still checked"})
        db.crash_and_recover()
        table = db.table("t")
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == "still checked"
        assert table.read_as_of(mark, 1)["v"] == "checked"


class TestFaultyDisk:
    # Blobs fill ~8000 of the 8192 bytes so a tear at any offset lands in
    # bytes that actually differ between versions.
    def _fresh(self, **kwargs) -> tuple[FaultyDisk, int, bytes]:
        disk = FaultyDisk(InMemoryDisk(), **kwargs)
        disk.checksums = True
        pid = disk.allocate()
        image = stamp_checksum(_meta_image(disk, pid, b"v1" * 4000))
        return disk, pid, image

    def test_clean_passthrough(self):
        disk, pid, image = self._fresh()
        disk.write_page(pid, image)
        assert disk.read_page(pid) == image
        assert disk.stats.writes == 1 and disk.stats.reads == 1
        assert disk.inner.stats.writes == 0  # inner's counters untouched

    def test_torn_write_detected_by_checksum(self):
        disk, pid, image = self._fresh()
        disk.write_page(pid, image)
        disk.arm("torn_write")
        v2 = stamp_checksum(_meta_image(disk, pid, b"v2" * 4000))
        disk.write_page(pid, v2)
        with pytest.raises(ChecksumError):
            disk.read_page(pid)
        assert disk.injected["torn_write"] == 1

    def test_torn_write_silent_without_checksums(self):
        disk, pid, image = self._fresh()
        disk.checksums = False
        disk.write_page(pid, image)
        disk.arm("torn_write")
        v2 = _meta_image(disk, pid, b"v2" * 4000)
        disk.write_page(pid, v2)
        got = disk.read_page(pid)   # no error: this is the silent-damage case
        assert got != v2 and got != image

    def test_dropped_write_keeps_old_image(self):
        disk, pid, image = self._fresh()
        disk.write_page(pid, image)
        disk.arm("dropped_write")
        disk.write_page(pid, stamp_checksum(_meta_image(disk, pid, b"new")))
        assert disk.read_page(pid) == image

    def test_bitrot_detected_by_checksum(self):
        disk, pid, image = self._fresh()
        disk.write_page(pid, image)
        disk.arm("bitrot_read")
        with pytest.raises(ChecksumError):
            disk.read_page(pid)
        assert disk.read_page(pid) == image  # rot was transient (in-cache copy)

    def test_transient_io_errors(self):
        disk, pid, image = self._fresh()
        disk.arm("write_error")
        with pytest.raises(InjectedIOError):
            disk.write_page(pid, image)
        disk.write_page(pid, image)   # retry succeeds
        disk.arm("read_error")
        with pytest.raises(InjectedIOError):
            disk.read_page(pid)
        assert disk.read_page(pid) == image

    def test_seeded_probabilistic_faults_are_deterministic(self):
        def injected(seed: int):
            disk = FaultyDisk(InMemoryDisk(), seed=seed, dropped_write_p=0.3)
            pid = disk.allocate()
            image = _meta_image(disk, pid, b"x")
            for _ in range(40):
                disk.write_page(pid, image)
            return dict(disk.injected)

        assert injected(3) == injected(3)
        assert injected(3)["dropped_write"] > 0

    def test_unknown_fault_kind_rejected(self):
        disk = FaultyDisk(InMemoryDisk())
        with pytest.raises(ValueError):
            disk.arm("lightning_strike")

    def test_engine_runs_on_faulty_disk(self):
        # The engine accepts an injected disk; checksums catch corruption
        # on the next physical read of a flushed page.
        disk = FaultyDisk(InMemoryDisk())
        db = ImmortalDB(disk=disk, page_checksums=True, buffer_pages=16)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "hello"})
        db.buffer.flush_all()
        db.buffer.discard_all()   # force the next read to hit the disk
        disk.arm("bitrot_read")
        with pytest.raises(ChecksumError):
            db.buffer.get_page(db.table("t").btree.root_pid)


class TestTornLogTail:
    def _make_log(self, path) -> int:
        log = FileLogManager(path)
        log.append(BeginTxn(tid=1))
        log.append(BeginTxn(tid=2))
        log.force()
        log.close()
        import os

        return os.path.getsize(path)

    def test_drop_bytes_truncates_final_record(self, tmp_path):
        path = tmp_path / "wal.log"
        self._make_log(path)
        tear_log_tail(path, drop_bytes=3)
        reopened = FileLogManager(path)
        assert [r.tid for r in reopened.records_from(0)] == [1]
        reopened.close()

    def test_garble_corrupts_final_record(self, tmp_path):
        path = tmp_path / "wal.log"
        self._make_log(path)
        tear_log_tail(path, garble_at=-2)   # inside the last frame's record
        reopened = FileLogManager(path)
        assert [r.tid for r in reopened.records_from(0)] == [1]
        reopened.close()

    def test_garble_offset_out_of_range(self, tmp_path):
        path = tmp_path / "wal.log"
        size = self._make_log(path)
        with pytest.raises(ValueError):
            tear_log_tail(path, garble_at=size + 10)
