"""Tests for the Section-6 related-work baselines."""

from __future__ import annotations

import pytest

from repro.baselines.flashback import (
    FlashbackHorizonError,
    FlashbackTable,
)
from repro.baselines.postgres_style import PostgresStyleTable
from repro.baselines.rdb_commitlist import (
    AsOfNotSupportedError,
    RdbCommitListTable,
)
from repro.clock import Timestamp
from repro.errors import DuplicateKeyError, KeyNotFoundError


class TestRdbCommitList:
    def test_snapshot_sees_state_at_begin(self):
        table = RdbCommitListTable()
        t1 = table.begin_update()
        table.write(t1, "a", {"v": 1})
        table.commit(t1)
        snap = table.begin_snapshot()
        t2 = table.begin_update()
        table.write(t2, "a", {"v": 2})
        table.commit(t2)
        assert table.snapshot_read(snap, "a") == {"v": 1}
        # A fresh snapshot sees the new value.
        assert table.snapshot_read(table.begin_snapshot(), "a") == {"v": 2}

    def test_uncommitted_writes_invisible(self):
        table = RdbCommitListTable()
        t1 = table.begin_update()
        table.write(t1, "a", {"v": 1})
        table.commit(t1)
        t2 = table.begin_update()
        table.write(t2, "a", {"v": 2})   # never committed
        snap = table.begin_snapshot()
        assert table.snapshot_read(snap, "a") == {"v": 1}

    def test_out_of_order_commits_tracked_explicitly(self):
        table = RdbCommitListTable()
        t1 = table.begin_update()
        t2 = table.begin_update()
        table.write(t2, "a", {"v": 2})
        table.commit(t2)                 # t1 still open: low-water stalls
        snap = table.begin_snapshot()
        assert snap.low_water == 0
        assert 2 in snap.explicit
        assert table.snapshot_read(snap, "a") == {"v": 2}
        table.commit(t1)

    def test_as_of_is_architecturally_impossible(self):
        table = RdbCommitListTable()
        with pytest.raises(AsOfNotSupportedError):
            table.as_of_read("2004-08-12", "a")

    def test_versions_do_not_survive_crash(self):
        table = RdbCommitListTable()
        t1 = table.begin_update()
        table.write(t1, "a", {"v": 1})
        table.commit(t1)
        t2 = table.begin_update()
        table.write(t2, "a", {"v": 2})
        table.commit(t2)
        table.crash()
        snap = table.begin_snapshot()
        assert table.snapshot_read(snap, "a") == {"v": 2}  # current survives
        assert table._history == {}                         # versions gone

    def test_gc_respects_oldest_snapshot(self):
        table = RdbCommitListTable()
        for v in (0, 1):     # two versions exist before the snapshot begins
            t = table.begin_update()
            table.write(t, "a", {"v": v})
            table.commit(t)
        old_snap = table.begin_snapshot()
        for v in (2, 3, 4):
            t = table.begin_update()
            table.write(t, "a", {"v": v})
            table.commit(t)
        dropped = table.garbage_collect(old_snap)
        # The snapshot's version (v=1) survives; the older v=0 is dropped.
        assert table.snapshot_read(old_snap, "a") == {"v": 1}
        assert dropped == 1


class TestFlashback:
    def _table_with_history(self):
        table = FlashbackTable()
        table.insert(0.0, "a", {"v": 0})
        scns = [table._scn]
        for i in range(1, 6):
            table.update(i * 10_000.0, "a", {"v": i})
            scns.append(table._scn)
        return table, scns

    def test_as_of_scn_reconstructs(self):
        table, scns = self._table_with_history()
        for i, scn in enumerate(scns):
            assert table.read_as_of_scn(scn, "a") == {"v": i}

    def test_undo_scan_grows_with_depth(self):
        table, scns = self._table_with_history()
        table.metrics.undo_records_scanned = 0
        table.read_as_of_scn(scns[-1], "a")
        recent = table.metrics.undo_records_scanned
        table.metrics.undo_records_scanned = 0
        table.read_as_of_scn(scns[0], "a")
        deep = table.metrics.undo_records_scanned
        assert deep > recent

    def test_deleted_record_is_none(self):
        table, scns = self._table_with_history()
        table.delete(99_000.0, "a")
        assert table.read_as_of_scn(table._scn, "a") is None
        assert table.read_as_of_scn(scns[2], "a") == {"v": 2}

    def test_time_mapping_is_approximate(self):
        """Clock-time flashback rounds to coarse SCN boundaries."""
        table = FlashbackTable()
        table.insert(0.0, "a", {"v": 0})
        table.update(100.0, "a", {"v": 1})     # same coarse window
        table.update(10_000.0, "a", {"v": 2})
        got = table.read_as_of_time(150.0, "a")
        # The exact answer at t=150 is v=1; the coarse mapping returns v=0.
        assert got == {"v": 0}

    def test_retention_limits_history(self):
        table = FlashbackTable(retention_records=3)
        table.insert(0.0, "a", {"v": 0})
        for i in range(1, 10):
            table.update(i * 5_000.0, "a", {"v": i})
        with pytest.raises(FlashbackHorizonError):
            table.read_as_of_scn(1, "a")

    def test_flashback_table_rewinds_state(self):
        table, scns = self._table_with_history()
        changed = table.flashback_table_to_scn(scns[2])
        assert changed == 3
        assert table._current["a"] == {"v": 2}

    def test_update_missing_key_rejected(self):
        table = FlashbackTable()
        with pytest.raises(KeyNotFoundError):
            table.update(0.0, "nope", {"v": 1})


class TestPostgresStyle:
    def _table_with_history(self):
        table = PostgresStyleTable()
        tick = 1
        marks = []
        table.insert(Timestamp(tick, 0), "a", {"v": 0})
        table.insert(Timestamp(tick, 1), "b", {"v": 100})
        for i in range(1, 8):
            tick += 1
            table.update(Timestamp(tick, 0), "a", {"v": i})
            marks.append(Timestamp(tick, 1))
            if i % 3 == 0:
                table.vacuum(versions_per_page=2)
        return table, marks

    def test_as_of_reads_across_both_stores(self):
        table, marks = self._table_with_history()
        table.vacuum(versions_per_page=2)
        for i, mark in enumerate(marks, start=1):
            assert table.read_as_of(mark, "a") == {"v": i}

    def test_as_of_always_probes_archive(self):
        """The structural cost: both stores checked on every as-of."""
        table, marks = self._table_with_history()
        table.vacuum(versions_per_page=2)
        before = table.metrics.archive_pages_probed
        table.read_as_of(marks[-1], "a")   # answer is in the current store!
        assert table.metrics.archive_pages_probed > before

    def test_vacuum_moves_old_versions(self):
        table, _ = self._table_with_history()
        chain_before = table.current_chain_length("a")
        moved = table.vacuum()
        assert table.current_chain_length("a") == 1
        assert moved == chain_before - 1

    def test_versions_scatter_across_archive_pages(self):
        table, marks = self._table_with_history()
        table.vacuum(versions_per_page=2)
        assert table.archive_page_count >= 3

    def test_delete_tombstones(self):
        table, marks = self._table_with_history()
        table.delete(Timestamp(100, 0), "a")
        assert table.read_current("a") is None
        assert table.read_as_of(marks[0], "a") == {"v": 1}

    def test_duplicate_insert_rejected(self):
        table = PostgresStyleTable()
        table.insert(Timestamp(1, 0), "a", {"v": 1})
        with pytest.raises(DuplicateKeyError):
            table.insert(Timestamp(2, 0), "a", {"v": 2})
