"""Tests for the B-tree primary index: descent, splits, leaf chains."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.btree import BTree, BTreeIndexPage
from repro.clock import SimClock
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDisk
from repro.storage.page import DataPage, decode_page
from repro.storage.record import RecordVersion
from repro.wal.log import LogManager


class Env:
    def __init__(self, *, immortal=True, capacity=256):
        self.disk = InMemoryDisk()
        self.buffer = BufferPool(self.disk, capacity=capacity)
        self.log = LogManager()
        self.clock = SimClock(ms_per_timestamp=5.0)
        self.btree = BTree(
            self.buffer, self.log, self.clock, table_id=1, immortal=immortal
        )
        self._stamp_all = True
        self.btree.stamp_page = self._stamp

    def _stamp(self, page: DataPage) -> int:
        # Standalone stand-in for the timestamp manager: committed == all.
        count = 0
        for version in page.unstamped_versions():
            version.stamp(self.clock.next_timestamp())
            count += 1
        return count

    def insert(self, key: bytes, payload: bytes = b"v") -> None:
        record = RecordVersion.new(key, payload, tid=1)
        record.stamp(self.clock.next_timestamp())
        leaf = self.btree.leaf_for_insert(record)
        lsn = self.log.append(
            __import__("repro.wal.records", fromlist=["VersionOp"]).VersionOp(
                tid=1, table_id=1, page_id=leaf.page_id,
                key=key, payload=payload,
            )
        )
        self.btree.apply_insert(leaf, record, lsn)


@pytest.fixture
def env():
    return Env()


def k(i: int) -> bytes:
    return f"k{i:06}".encode()


class TestBasics:
    def test_single_leaf_root(self, env):
        env.insert(b"a")
        leaf = env.btree.search_leaf(b"a")
        assert leaf.head(b"a") is not None
        assert leaf.page_id == env.btree.root_pid

    def test_search_routes_to_correct_leaf(self, env):
        for i in range(600):
            env.insert(k(i), b"x" * 60)
        for i in (0, 123, 599):
            leaf = env.btree.search_leaf(k(i))
            assert leaf.head(k(i)) is not None, i

    def test_root_pid_is_stable_across_growth(self, env):
        root = env.btree.root_pid
        for i in range(3000):
            env.insert(k(i), b"x" * 40)
        assert env.btree.root_pid == root
        assert isinstance(env.buffer.get_page(root), BTreeIndexPage)

    def test_leaves_iterate_in_key_order(self, env):
        for i in range(800):
            env.insert(k(i), b"x" * 50)
        seen: list[bytes] = []
        for leaf in env.btree.leaves():
            seen.extend(leaf.keys())
        assert seen == sorted(seen)
        assert len(seen) == 800

    def test_leaves_with_bounds_tile_the_key_space(self, env):
        for i in range(800):
            env.insert(k(i), b"x" * 50)
        bounds = list(env.btree.leaves_with_bounds())
        assert bounds[0][1] == b""            # first low bound is -inf
        assert bounds[-1][2] is None          # last high bound is +inf
        for (_, _, high), (_, low, _) in zip(bounds, bounds[1:]):
            assert high == low                # adjacent bounds meet exactly
        for leaf, low, high in bounds:
            for key in leaf.keys():
                assert key >= low
                assert high is None or key < high

    def test_oversized_key_rejected(self, env):
        from repro.errors import AccessMethodError

        rec = RecordVersion.new(b"x" * 200, b"v", tid=1)
        with pytest.raises(AccessMethodError):
            env.btree.leaf_for_insert(rec)


class TestImmortalSplitting:
    def test_repeated_updates_cause_time_splits(self, env):
        for round_no in range(300):
            env.insert(b"hot", f"value-{round_no}".encode() + b"x" * 60)
        assert env.btree.stats.time_splits >= 1
        leaf = env.btree.search_leaf(b"hot")
        assert leaf.history_page_id != 0
        history = env.buffer.get_page(leaf.history_page_id)
        assert isinstance(history, DataPage) and history.is_history

    def test_distinct_keys_cause_key_splits(self, env):
        for i in range(600):
            env.insert(k(i), b"x" * 60)
        assert env.btree.stats.key_splits >= 1

    def test_mixed_workload_splits_both_ways(self, env):
        for i in range(150):
            env.insert(k(i), b"x" * 40)
        for round_no in range(40):
            for i in range(150):
                env.insert(k(i), f"r{round_no}".encode() + b"y" * 40)
        assert env.btree.stats.time_splits >= 1
        assert env.btree.stats.key_splits >= 1

    def test_history_chain_lengthens_over_time(self, env):
        for round_no in range(1200):
            env.insert(b"hot", b"z" * 100)
        leaf = env.btree.search_leaf(b"hot")
        chain_length = 0
        pid = leaf.history_page_id
        while pid:
            chain_length += 1
            pid = env.buffer.get_page(pid).history_page_id
        assert chain_length >= 2

    def test_smo_logging_installs_images(self, env):
        from repro.wal.records import MultiPageImage

        for i in range(600):
            env.insert(k(i), b"x" * 60)
        smos = [
            r for r in env.log.records_from(0) if isinstance(r, MultiPageImage)
        ]
        assert smos
        # Every image decodes and carries the SMO's LSN.
        for smo in smos[-3:]:
            for pid, image in smo.images:
                page = decode_page(image)
                assert page.page_id == pid
                assert page.lsn == smo.lsn


class TestConventionalSplitting:
    def test_prune_hook_is_preferred_over_key_split(self):
        env = Env(immortal=False)
        pruned_pages = []

        def prune(leaf):
            from repro.concurrency.snapshot import prune_conventional_page

            env._stamp(leaf)
            rebuilt, dropped = prune_conventional_page(
                leaf, None, lambda tid: (None, False)
            )
            pruned_pages.append(dropped)
            return rebuilt, dropped

        env.btree.prune_page = prune
        for round_no in range(400):
            env.insert(b"hot", b"x" * 80)
        assert env.btree.stats.prunes >= 1
        assert env.btree.stats.time_splits == 0
        assert sum(pruned_pages) > 0

    def test_plain_key_split_without_prune(self):
        env = Env(immortal=False)
        for i in range(600):
            env.insert(k(i), b"x" * 60)
        assert env.btree.stats.key_splits >= 1
        assert env.btree.stats.time_splits == 0


class TestIndexNodeCodec:
    def test_roundtrip(self):
        node = BTreeIndexPage(5)
        node.children = [10, 11, 12]
        node.seps = [b"m", b"t"]
        node.lsn = 88
        decoded = decode_page(node.to_bytes())
        assert isinstance(decoded, BTreeIndexPage)
        assert decoded.children == [10, 11, 12]
        assert decoded.seps == [b"m", b"t"]
        assert decoded.lsn == 88

    def test_single_child_roundtrip(self):
        node = BTreeIndexPage(5)
        node.children = [10]
        decoded = decode_page(node.to_bytes())
        assert decoded.children == [10] and decoded.seps == []

    def test_child_index_for(self):
        node = BTreeIndexPage(5)
        node.children = [10, 11, 12]
        node.seps = [b"m", b"t"]
        assert node.child_index_for(b"a") == 0
        assert node.child_index_for(b"m") == 1
        assert node.child_index_for(b"z") == 2


class TestPropertyBased:
    @settings(max_examples=15, deadline=None)
    @given(
        keys=st.lists(st.integers(0, 5000), min_size=1, max_size=400),
    )
    def test_all_inserted_keys_findable(self, keys):
        env = Env()
        expected: dict[bytes, bytes] = {}
        for i, key_num in enumerate(keys):
            key = k(key_num)
            payload = f"p{i}".encode() + b"#" * 30
            env.insert(key, payload)
            expected[key] = payload
        for key, payload in expected.items():
            leaf = env.btree.search_leaf(key)
            head = leaf.head(key)
            assert head is not None
            assert head.payload == payload
        # Leaf chain covers exactly the distinct keys.
        all_keys = [key for leaf in env.btree.leaves() for key in leaf.keys()]
        assert sorted(all_keys) == sorted(expected)
