"""Tests for page time splits — the four cases of Figure 3."""

from __future__ import annotations

import pytest

from repro.access.timesplit import (
    key_split_page,
    needs_key_split,
    time_split_page,
)
from repro.clock import Timestamp
from repro.errors import AccessMethodError
from repro.storage.page import DataPage
from repro.storage.record import RecordVersion


def stamped(key: bytes, payload: bytes, t: int) -> RecordVersion:
    rec = RecordVersion.new(key, payload, tid=999)
    rec.stamp(Timestamp(t, 0))
    return rec


def stub(key: bytes, t: int) -> RecordVersion:
    rec = RecordVersion.new(key, b"", tid=999, delete_stub=True)
    rec.stamp(Timestamp(t, 0))
    return rec


def page_with(*chains: list[RecordVersion]) -> DataPage:
    page = DataPage(1, table_id=1, immortal=True)
    for chain in chains:
        for version in chain:  # oldest-first insert order
            page.insert_version(version)
    return page


SPLIT = Timestamp(100, 0)


class TestFourCases:
    def test_case1_ended_versions_move_to_history(self):
        # A version updated at t=50: the t=10 version ends at 50 < 100.
        page = page_with([stamped(b"A", b"v0", 10), stamped(b"A", b"v1", 50)])
        out = time_split_page(page, SPLIT, history_page_id=2)
        assert out.moved == 1
        history_payloads = [v.payload for v in out.history.chain(b"A")]
        assert b"v0" in history_payloads

    def test_case2_spanning_versions_in_both_pages(self):
        """The redundancy that makes every page cover its full time range."""
        page = page_with([stamped(b"A", b"v0", 10)])
        out = time_split_page(page, SPLIT, history_page_id=2)
        assert out.copied == 1
        assert out.current.head(b"A").payload == b"v0"
        assert out.history.head(b"A").payload == b"v0"

    def test_case3_versions_after_split_stay_current_only(self):
        page = page_with([stamped(b"A", b"v0", 10), stamped(b"A", b"v1", 150)])
        out = time_split_page(page, Timestamp(100, 0), history_page_id=2)
        assert out.history.head(b"A").payload == b"v0"
        current_payloads = [v.payload for v in out.current.chain(b"A")]
        assert current_payloads[0] == b"v1"
        assert b"v1" not in [v.payload for v in out.history.chain(b"A")]

    def test_case4_uncommitted_stay_current_only(self):
        uncommitted = RecordVersion.new(b"A", b"dirty", tid=5)
        page = page_with([stamped(b"A", b"v0", 10)])
        page.insert_version(uncommitted)
        out = time_split_page(page, SPLIT, history_page_id=2)
        current_payloads = [v.payload for v in out.current.chain(b"A")]
        assert b"dirty" in current_payloads
        assert b"dirty" not in [v.payload for v in out.history.chain(b"A")]
        # The committed version underneath spans: copied to both.
        assert b"v0" in [v.payload for v in out.history.chain(b"A")]

    def test_old_delete_stubs_leave_current_page(self):
        """Figure 3: stubs before split time are removed from current."""
        page = page_with([stamped(b"C", b"c0", 10)])
        page.insert_version(stub(b"C", 50))
        out = time_split_page(page, SPLIT, history_page_id=2)
        # Current page has no trace of C at all.
        assert out.current.head(b"C") is None
        # History has the version and the stub ending it.
        hist = list(out.history.chain(b"C"))
        assert hist[0].is_delete_stub
        assert hist[1].payload == b"c0"

    def test_recent_delete_stub_stays_current(self):
        """Figure 3's record C: a stub after split time is current-only."""
        page = page_with([stamped(b"C", b"c0", 10)])
        page.insert_version(stub(b"C", 150))
        out = time_split_page(page, SPLIT, history_page_id=2)
        assert out.current.head(b"C").is_delete_stub
        assert not any(v.is_delete_stub for v in out.history.chain(b"C"))


class TestPageMetadata:
    def test_time_ranges_chain_correctly(self):
        page = page_with([stamped(b"A", b"v0", 10)])
        page.split_ts = Timestamp(5, 0)
        page.history_page_id = 77  # pre-existing older history page
        out = time_split_page(page, SPLIT, history_page_id=2)
        assert out.history.split_ts == Timestamp(5, 0)
        assert out.history.end_ts == SPLIT
        assert out.history.history_page_id == 77   # chain extends backwards
        assert out.current.split_ts == SPLIT
        assert out.current.history_page_id == 2

    def test_history_page_is_marked_history(self):
        page = page_with([stamped(b"A", b"v0", 10)])
        out = time_split_page(page, SPLIT, history_page_id=2)
        assert out.history.is_history
        assert not out.current.is_history

    def test_spanning_version_vp_points_into_history(self):
        page = page_with([stamped(b"A", b"v0", 10), stamped(b"A", b"v1", 50)])
        out = time_split_page(page, SPLIT, history_page_id=2)
        tail = list(out.current.chain(b"A"))[-1]
        assert tail.vp_in_history
        slot = out.history.slot_of(b"A")
        assert tail.vp == slot

    def test_immortal_and_table_id_propagate(self):
        page = page_with([stamped(b"A", b"v0", 10)])
        out = time_split_page(page, SPLIT, history_page_id=2)
        assert out.history.immortal and out.current.immortal
        assert out.history.table_id == 1

    def test_split_must_advance_time(self):
        page = page_with([stamped(b"A", b"v0", 10)])
        page.split_ts = SPLIT
        with pytest.raises(AccessMethodError):
            time_split_page(page, SPLIT, history_page_id=2)

    def test_history_pages_never_split(self):
        page = DataPage(1, is_history=True)
        with pytest.raises(AccessMethodError):
            time_split_page(page, SPLIT, history_page_id=2)


class TestCoverageInvariant:
    def test_every_page_contains_versions_alive_in_its_range(self):
        """The essential point of Section 3.3."""
        chain = [stamped(b"A", f"v{i}".encode(), 10 + i * 20) for i in range(6)]
        page = page_with(chain)
        out = time_split_page(page, Timestamp(75, 0), history_page_id=2)
        # Versions alive at some t < 75 must be findable in the history page;
        # versions alive at some t >= 75 in the current page.
        for t in (10, 30, 50, 70):
            alive = max(
                (v for v in chain if v.timestamp <= Timestamp(t, 0)),
                key=lambda v: v.timestamp,
            )
            hist_versions = {v.payload for v in out.history.chain(b"A")}
            assert alive.payload in hist_versions, f"t={t}"
        for t in (80, 100, 120):
            alive = max(
                (v for v in chain if v.timestamp <= Timestamp(t, 0)),
                key=lambda v: v.timestamp,
            )
            cur_versions = {v.payload for v in out.current.chain(b"A")}
            assert alive.payload in cur_versions, f"t={t}"


class TestKeySplitPolicy:
    def test_needs_key_split_thresholds_on_current_bytes(self):
        page = DataPage(1, immortal=True)
        # Many versions of one record: current-version bytes stay tiny.
        for i in range(60):
            page.insert_version(stamped(b"A", b"x" * 50, 10 + i))
        assert not needs_key_split(page, 0.7)
        # Many single-version records: everything is current.
        page2 = DataPage(2, immortal=True)
        for i in range(90):
            page2.insert_version(stamped(f"k{i:04}".encode(), b"x" * 50, 10))
        assert needs_key_split(page2, 0.5)


class TestKeySplit:
    def test_chains_move_whole(self):
        page = page_with(
            [stamped(b"A", b"a0", 10), stamped(b"A", b"a1", 20)],
            [stamped(b"M", b"m0", 10)],
            [stamped(b"Z", b"z0", 10), stamped(b"Z", b"z1", 30)],
        )
        left, right, sep = key_split_page(page, right_page_id=9)
        assert left.page_id == 1 and right.page_id == 9
        all_keys = sorted(left.keys() + right.keys())
        assert all_keys == [b"A", b"M", b"Z"]
        assert all(k < sep for k in left.keys())
        assert all(k >= sep for k in right.keys())
        # Chain integrity preserved on whichever side.
        side = left if b"A" in left.keys() else right
        assert [v.payload for v in side.chain(b"A")] == [b"a1", b"a0"]

    def test_both_halves_share_history_pointer(self):
        page = page_with([stamped(b"A", b"a", 10)], [stamped(b"B", b"b", 10)])
        page.history_page_id = 55
        page.split_ts = Timestamp(5, 0)
        left, right, _ = key_split_page(page, right_page_id=9)
        assert left.history_page_id == right.history_page_id == 55
        assert left.split_ts == right.split_ts == Timestamp(5, 0)

    def test_leaf_chain_threading(self):
        page = page_with([stamped(b"A", b"a", 10)], [stamped(b"B", b"b", 10)])
        page.next_leaf_id = 33
        left, right, _ = key_split_page(page, right_page_id=9)
        assert left.next_leaf_id == 9
        assert right.next_leaf_id == 33

    def test_single_key_page_cannot_split(self):
        page = page_with([stamped(b"A", b"a", 10)])
        with pytest.raises(AccessMethodError):
            key_split_page(page, right_page_id=9)

    def test_split_balances_bytes(self):
        page = page_with(
            *[[stamped(f"k{i:03}".encode(), b"x" * 40, 10)] for i in range(20)]
        )
        left, right, _ = key_split_page(page, right_page_id=9)
        assert abs(left.used_bytes - right.used_bytes) < page.used_bytes / 3
