"""Tests for the record layout (paper Figure 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.clock import Timestamp
from repro.storage.constants import NO_PREVIOUS, RecordFlag, VERSIONING_TAIL_SIZE
from repro.storage.record import RecordVersion


def make(key=b"k1", payload=b"hello", tid=7, **kw) -> RecordVersion:
    return RecordVersion.new(key, payload, tid, **kw)


class TestRecordCreation:
    def test_new_record_carries_tid_not_timestamp(self):
        rec = make(tid=99)
        assert not rec.is_timestamped
        assert rec.tid == 99

    def test_new_record_has_no_previous_version(self):
        rec = make()
        assert not rec.has_previous
        assert rec.vp == NO_PREVIOUS

    def test_delete_stub_has_empty_payload(self):
        stub = RecordVersion.new(b"k", b"ignored", 3, delete_stub=True)
        assert stub.is_delete_stub
        assert stub.payload == b""

    def test_timestamp_access_before_stamping_fails(self):
        with pytest.raises(ValueError):
            _ = make().timestamp


class TestStamping:
    def test_stamp_replaces_tid_with_timestamp(self):
        rec = make(tid=5)
        ts = Timestamp(1000, 3)
        rec.stamp(ts)
        assert rec.is_timestamped
        assert rec.timestamp == ts

    def test_double_stamping_rejected(self):
        rec = make()
        rec.stamp(Timestamp(1, 0))
        with pytest.raises(ValueError):
            rec.stamp(Timestamp(2, 0))

    def test_tid_access_after_stamping_fails(self):
        rec = make()
        rec.stamp(Timestamp(1, 0))
        with pytest.raises(ValueError):
            _ = rec.tid


class TestCodec:
    def test_roundtrip(self):
        rec = make(key=b"abc", payload=b"\x00\x01\x02", tid=123)
        rec.vp = 17
        rec.flags |= RecordFlag.VP_IN_HISTORY
        image = rec.to_bytes()
        decoded, consumed = RecordVersion.from_bytes(image)
        assert consumed == len(image)
        assert decoded == rec

    def test_versioning_tail_is_exactly_14_bytes(self):
        """Figure 1: VP(2) + Ttime(8) + SN(4) = the same 14 bytes SQL Server
        spends on snapshot versioning."""
        rec = make(key=b"", payload=b"")
        fixed = 1 + 2 + 2  # flags + key_len + payload_len
        assert len(rec.to_bytes()) == fixed + VERSIONING_TAIL_SIZE
        assert VERSIONING_TAIL_SIZE == 14

    def test_size_on_page_matches_encoding(self):
        rec = make(key=b"abcd", payload=b"x" * 37)
        assert rec.size_on_page == len(rec.to_bytes())

    def test_decode_at_offset(self):
        rec = make()
        blob = b"\xff" * 10 + rec.to_bytes()
        decoded, end = RecordVersion.from_bytes(blob, 10)
        assert decoded == rec
        assert end == len(blob)

    def test_stamped_record_roundtrip(self):
        rec = make()
        rec.stamp(Timestamp(555, 666))
        decoded, _ = RecordVersion.from_bytes(rec.to_bytes())
        assert decoded.is_timestamped
        assert decoded.timestamp == Timestamp(555, 666)

    @given(
        key=st.binary(min_size=0, max_size=64),
        payload=st.binary(min_size=0, max_size=512),
        tid=st.integers(1, 2**62),
        vp=st.integers(0, 0xFFFF),
        stub=st.booleans(),
    )
    def test_roundtrip_property(self, key, payload, tid, vp, stub):
        rec = RecordVersion.new(key, payload, tid, delete_stub=stub)
        rec.vp = vp
        decoded, consumed = RecordVersion.from_bytes(rec.to_bytes())
        assert decoded == rec
        assert consumed == rec.size_on_page


class TestCopy:
    def test_copy_is_detached(self):
        rec = make()
        dup = rec.copy()
        dup.stamp(Timestamp(9, 9))
        assert not rec.is_timestamped

    def test_copy_preserves_all_fields(self):
        rec = make(key=b"kk", payload=b"pp")
        rec.vp = 3
        rec.flags |= RecordFlag.VP_IN_HISTORY
        assert rec.copy() == rec
