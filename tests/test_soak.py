"""Soak test: a long randomized mixed workload with invariants re-verified.

One seeded run drives every feature at once — immortal and snapshot
tables, serializable/snapshot/as-of transactions, aborts, deletes and
re-inserts, checkpoints, crashes, backup freezes — and checks after every
phase that (a) the model state matches, (b) all captured historical marks
still reproduce, and (c) the full integrity checker stays clean.
"""

from __future__ import annotations

import random

import pytest

from repro import ColumnType, ImmortalDB, TxnMode, verify_integrity
from repro.core.backup import QueryableBackup
from repro.errors import ImmortalDBError, LockConflictError, WriteConflictError


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]
KEYS = 25


@pytest.mark.parametrize("seed", [7, 21, 1999])
def test_soak_mixed_workload(seed):
    rng = random.Random(seed)
    db = ImmortalDB(buffer_pages=48, use_tsb_index=(seed % 2 == 0))
    ledger = db.create_table("ledger", COLS, key="k", immortal=True)
    scratch = db.create_table("scratch", COLS, key="k", snapshot=True)

    model: dict[int, str] = {}
    marks: list[tuple] = []
    open_snapshots: list = []

    def one_write(i: int) -> None:
        key = rng.randrange(KEYS)
        value = f"s{seed}i{i}" + "x" * rng.randrange(30)
        abort = rng.random() < 0.10
        txn = db.begin()
        try:
            if key in model:
                if rng.random() < 0.15:
                    ledger.delete(txn, key)
                    new_state = None
                else:
                    ledger.update(txn, key, {"v": value})
                    new_state = value
            else:
                ledger.insert(txn, {"k": key, "v": value})
                new_state = value
            if rng.random() < 0.3:
                # Ride along on the scratch table in the same transaction.
                try:
                    scratch.insert(txn, {"k": key, "v": value})
                except ImmortalDBError:
                    pass
        except (LockConflictError, WriteConflictError):
            db.abort(txn)
            return
        if abort:
            db.abort(txn)
            return
        db.commit(txn)
        if new_state is None:
            model.pop(key, None)
        else:
            model[key] = new_state

    for i in range(400):
        db.advance_time(rng.uniform(10, 400))
        one_write(i)

        roll = rng.random()
        if roll < 0.05:
            marks.append((db.now(), dict(model)))
        elif roll < 0.08:
            open_snapshots.append(db.begin(TxnMode.SNAPSHOT))
        elif roll < 0.10 and open_snapshots:
            db.commit(open_snapshots.pop())
        elif roll < 0.13:
            db.checkpoint(flush=rng.random() < 0.5)
        elif roll < 0.15:
            for snap in open_snapshots:
                db.abort(snap)
            open_snapshots.clear()
            db.crash_and_recover()
            verify_integrity(db, strict=True)
            ledger = db.table("ledger")
            scratch = db.table("scratch")
        elif roll < 0.16:
            QueryableBackup(ledger).freeze()

        if i % 100 == 99:
            # Periodic deep validation.
            with db.transaction() as txn:
                got = {r["k"]: r["v"] for r in ledger.scan(txn)}
            assert got == model, f"divergence at op {i}"
            for mark, snapshot_model in marks:
                as_of = {
                    r["k"]: r["v"] for r in ledger.scan_as_of(mark)
                }
                assert as_of == snapshot_model, f"history broken at op {i}"
            assert verify_integrity(db) == []

    # Final validation, after one more crash for good measure.
    for snap in open_snapshots:
        db.abort(snap)
    db.crash_and_recover()
    verify_integrity(db, strict=True)
    ledger = db.table("ledger")
    with db.transaction() as txn:
        got = {r["k"]: r["v"] for r in ledger.scan(txn)}
    assert got == model
    for mark, snapshot_model in marks:
        assert {
            r["k"]: r["v"] for r in ledger.scan_as_of(mark)
        } == snapshot_model
    assert verify_integrity(db) == []
