"""Shared fixtures for the Immortal DB test suite."""

from __future__ import annotations

import pytest

from repro import ColumnType, ImmortalDB


@pytest.fixture
def db() -> ImmortalDB:
    """A fresh in-memory database with a small buffer pool."""
    return ImmortalDB(buffer_pages=64)


@pytest.fixture
def objects_table(db: ImmortalDB):
    """The paper's MovingObjects table (Section 4.1), immortal."""
    return db.create_table(
        "MovingObjects",
        columns=[
            ("Oid", ColumnType.SMALLINT),
            ("LocationX", ColumnType.INT),
            ("LocationY", ColumnType.INT),
        ],
        key="Oid",
        immortal=True,
    )


@pytest.fixture
def plain_table(db: ImmortalDB):
    """A conventional (non-immortal, non-snapshot) table."""
    return db.create_table(
        "Plain",
        columns=[("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k",
    )


def insert_row(db: ImmortalDB, table, row: dict) -> None:
    with db.transaction() as txn:
        table.insert(txn, row)


def update_row(db: ImmortalDB, table, key, updates: dict) -> None:
    with db.transaction() as txn:
        table.update(txn, key, updates)


def delete_row(db: ImmortalDB, table, key) -> None:
    with db.transaction() as txn:
        table.delete(txn, key)
