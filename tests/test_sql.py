"""Tests for the SQL front end: lexer, parser, executor, paper syntax."""

from __future__ import annotations

import pytest

from repro import ImmortalDB
from repro.errors import SQLExecutionError, SQLSyntaxError
from repro.sql import Session, parse_statement, tokenize
from repro.sql import ast
from repro.sql.lexer import TokenType


@pytest.fixture
def session():
    return Session(ImmortalDB(buffer_pages=64))


MOVING_OBJECTS_DDL = (
    "Create IMMORTAL Table MovingObjects "
    "(Oid smallint PRIMARY KEY, LocationX int, LocationY int) ON [PRIMARY]"
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select SeLeCt SELECT")
        assert all(t.value == "SELECT" for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        token = tokenize("MovingObjects")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "MovingObjects"

    def test_double_quoted_strings(self):
        token = tokenize('"8/12/2004 10:15:20"')[0]
        assert token.type is TokenType.STRING
        assert token.value == "8/12/2004 10:15:20"

    def test_quote_escaping(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert [t.value for t in tokens[:-1]] == ["42", "3.14"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n*")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "*"]

    def test_bad_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")


class TestParser:
    def test_paper_create_statement(self):
        stmt = parse_statement(MOVING_OBJECTS_DDL)
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.immortal
        assert stmt.name == "MovingObjects"
        assert stmt.columns[0].primary_key
        assert stmt.columns[0].type_name == "SMALLINT"
        assert stmt.filegroup == "PRIMARY"

    def test_paper_begin_tran_as_of(self):
        stmt = parse_statement('Begin Tran AS OF "8/12/2004 10:15:20"')
        assert isinstance(stmt, ast.BeginTran)
        assert stmt.as_of == "8/12/2004 10:15:20"

    def test_paper_select(self):
        stmt = parse_statement("SELECT * FROM MovingObjects WHERE Oid < 10")
        assert isinstance(stmt, ast.Select)
        assert stmt.columns is None
        assert stmt.where == ast.Comparison("Oid", "<", 10)

    def test_complex_where(self):
        stmt = parse_statement(
            "SELECT * FROM t WHERE a = 1 AND (b > 2 OR NOT c <> 'x')"
        )
        assert isinstance(stmt.where, ast.And)
        assert isinstance(stmt.where.right, ast.Or)

    def test_insert_multiple_rows(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (k, v) VALUES (1, NULL)")
        assert stmt.columns == ("k", "v")
        assert stmt.rows[0] == (1, None)

    def test_update(self):
        stmt = parse_statement("UPDATE t SET v = 'x', n = 3 WHERE k = 1")
        assert stmt.assignments == (("v", "x"), ("n", 3))

    def test_select_order_limit(self):
        stmt = parse_statement("SELECT k FROM t ORDER BY k DESC LIMIT 5")
        assert stmt.order_by.descending
        assert stmt.limit == 5

    def test_inline_as_of(self):
        stmt = parse_statement(
            "SELECT * FROM t AS OF '2006-01-01 00:00:30' WHERE k = 1"
        )
        assert stmt.as_of == "2006-01-01 00:00:30"

    def test_begin_snapshot_tran(self):
        stmt = parse_statement("BEGIN SNAPSHOT TRAN")
        assert stmt.snapshot

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("COMMIT TRAN extra")

    def test_varchar_size(self):
        stmt = parse_statement(
            "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(80))"
        )
        assert stmt.columns[1].size == 80


class TestExecutorDDLAndDML:
    def test_create_insert_select(self, session):
        session.execute(MOVING_OBJECTS_DDL)
        session.execute("INSERT INTO MovingObjects VALUES (1, 10, 20)")
        result = session.execute("SELECT * FROM MovingObjects")
        assert result.rows == [{"Oid": 1, "LocationX": 10, "LocationY": 20}]

    def test_update_and_delete(self, session):
        session.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        session.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
        assert session.execute("UPDATE t SET v = 'z' WHERE k > 1").rowcount == 2
        assert session.execute("DELETE FROM t WHERE k = 2").rowcount == 1
        rows = session.execute("SELECT * FROM t ORDER BY k").rows
        assert rows == [{"k": 1, "v": "a"}, {"k": 3, "v": "z"}]

    def test_projection(self, session):
        session.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        session.execute("INSERT INTO t VALUES (1, 'a')")
        rows = session.execute("SELECT v FROM t").rows
        assert rows == [{"v": "a"}]

    def test_missing_primary_key_rejected(self, session):
        with pytest.raises(SQLExecutionError):
            session.execute("CREATE TABLE t (k INT, v TEXT)")

    def test_point_lookup_by_key_equality(self, session):
        session.execute(MOVING_OBJECTS_DDL)
        for oid in range(20):
            session.execute(
                f"INSERT INTO MovingObjects VALUES ({oid}, {oid * 2}, 0)"
            )
        rows = session.execute(
            "SELECT * FROM MovingObjects WHERE Oid = 7"
        ).rows
        assert rows[0]["LocationX"] == 14

    def test_alter_enable_snapshot(self, session):
        session.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        session.execute("ALTER TABLE t ENABLE SNAPSHOT")
        assert session.db.table("t").versioned


class TestTransactions:
    def test_explicit_commit(self, session):
        session.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        session.execute("BEGIN TRAN")
        session.execute("INSERT INTO t VALUES (1, 'a')")
        session.execute("COMMIT TRAN")
        assert session.execute("SELECT * FROM t").rowcount == 1

    def test_rollback_discards(self, session):
        session.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        session.execute("BEGIN TRAN")
        session.execute("INSERT INTO t VALUES (1, 'a')")
        session.execute("ROLLBACK TRAN")
        assert session.execute("SELECT * FROM t").rowcount == 0

    def test_nested_begin_rejected(self, session):
        session.execute("BEGIN TRAN")
        with pytest.raises(SQLExecutionError):
            session.execute("BEGIN TRAN")
        session.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, session):
        with pytest.raises(SQLExecutionError):
            session.execute("COMMIT TRAN")


class TestAsOfQueries:
    def _seed(self, session) -> str:
        """Insert, then update after an hour; return the in-between time."""
        session.execute(MOVING_OBJECTS_DDL)
        session.execute("INSERT INTO MovingObjects VALUES (1, 10, 20)")
        session.execute("INSERT INTO MovingObjects VALUES (2, 30, 40)")
        # Datetime strings have one-second granularity; leave a clear gap
        # on both sides of the capture point.
        session.db.advance_time(60_000)
        between = session.db.clock.now_datetime()
        session.db.advance_time(3_600_000)
        session.execute("UPDATE MovingObjects SET LocationX = 99 WHERE Oid = 1")
        session.execute("DELETE FROM MovingObjects WHERE Oid = 2")
        return between.strftime("%m/%d/%Y %H:%M:%S")

    def test_paper_begin_tran_as_of_query(self, session):
        when = self._seed(session)
        session.execute(f'Begin Tran AS OF "{when}"')
        rows = session.execute(
            "SELECT * FROM MovingObjects WHERE Oid < 10"
        ).rows
        session.execute("Commit Tran")
        assert len(rows) == 2
        assert rows[0]["LocationX"] == 10

    def test_inline_as_of_select(self, session):
        when = self._seed(session)
        rows = session.execute(
            f"SELECT * FROM MovingObjects AS OF '{when}'"
        ).rows
        assert len(rows) == 2

    def test_writes_inside_as_of_tran_rejected(self, session):
        from repro.errors import ReadOnlyTransactionError

        when = self._seed(session)
        session.execute(f'BEGIN TRAN AS OF "{when}"')
        with pytest.raises(ReadOnlyTransactionError):
            session.execute("INSERT INTO MovingObjects VALUES (9, 0, 0)")
        session.execute("ROLLBACK TRAN")

    def test_current_query_sees_updates(self, session):
        self._seed(session)
        rows = session.execute("SELECT * FROM MovingObjects").rows
        assert len(rows) == 1
        assert rows[0]["LocationX"] == 99


class TestScripts:
    def test_execute_script(self, session):
        results = session.execute_script(
            """
            CREATE TABLE t (k INT PRIMARY KEY, v TEXT);
            INSERT INTO t VALUES (1, 'one');
            INSERT INTO t VALUES (2, 'two');
            SELECT * FROM t ORDER BY k;
            """
        )
        assert results[-1].rowcount == 2

    def test_snapshot_tran_via_sql(self, session):
        session.execute("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        session.execute("ALTER TABLE t ENABLE SNAPSHOT")
        session.execute("INSERT INTO t VALUES (1, 'before')")
        session.execute("BEGIN SNAPSHOT TRAN")
        # A second session updates concurrently.
        other = Session(session.db)
        other.execute("UPDATE t SET v = 'after' WHERE k = 1")
        rows = session.execute("SELECT * FROM t").rows
        session.execute("COMMIT TRAN")
        assert rows[0]["v"] == "before"
