"""Tests for the file-backed log and cross-process durability."""

from __future__ import annotations

import os

import pytest

from repro import ColumnType, ImmortalDB
from repro.faults.models import tear_log_tail
from repro.wal.filelog import FileLogManager
from repro.wal.records import BeginTxn, CommitTxn


COLS = [("k", ColumnType.INT), ("v", ColumnType.TEXT)]

# The final frame the sweep tears: framing (length + crc32) + record bytes.
_TAIL_FRAME = FileLogManager.FRAME_BYTES + len(BeginTxn(tid=2).to_bytes())


class TestFileLogManager:
    def test_records_survive_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        log = FileLogManager(path)
        log.append(BeginTxn(tid=1))
        log.append(CommitTxn(tid=1, ttime=9, sn=2, ptt=True))
        log.force()
        log.close()

        reopened = FileLogManager(path)
        records = list(reopened.records_from(0))
        assert [type(r).__name__ for r in records] == ["BeginTxn", "CommitTxn"]
        assert records[1].ttime == 9
        reopened.close()

    def test_unforced_records_never_reach_disk(self, tmp_path):
        path = tmp_path / "wal.log"
        log = FileLogManager(path)
        log.append(BeginTxn(tid=1))
        log.force()
        log.append(BeginTxn(tid=2))   # never forced
        # Simulate the process dying: reopen the file fresh.
        reopened = FileLogManager(path)
        assert [r.tid for r in reopened.records_from(0)] == [1]
        reopened.close()
        log.close()

    def test_appends_continue_after_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        log = FileLogManager(path)
        log.append(BeginTxn(tid=1))
        log.force()
        log.close()
        reopened = FileLogManager(path)
        reopened.append(BeginTxn(tid=2))
        reopened.force()
        reopened.close()
        final = FileLogManager(path)
        assert [r.tid for r in final.records_from(0)] == [1, 2]
        final.close()

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        log = FileLogManager(path)
        log.append(BeginTxn(tid=1))
        log.force()
        log.close()
        # Simulate a torn final write: half a frame of garbage.
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x00\x30\x01\x02")
        reopened = FileLogManager(path)
        assert [r.tid for r in reopened.records_from(0)] == [1]
        reopened.append(BeginTxn(tid=2))
        reopened.force()
        reopened.close()
        final = FileLogManager(path)
        assert [r.tid for r in final.records_from(0)] == [1, 2]
        final.close()

    def _two_record_log(self, path) -> None:
        log = FileLogManager(path)
        log.append(BeginTxn(tid=1))
        log.append(BeginTxn(tid=2))
        log.force()
        log.close()

    def _assert_tail_dropped_and_log_usable(self, path) -> None:
        """The torn frame is discarded; the survivor and appends both work."""
        reopened = FileLogManager(path)
        assert [r.tid for r in reopened.records_from(0)] == [1]
        reopened.append(BeginTxn(tid=3))
        reopened.force()
        reopened.close()
        final = FileLogManager(path)
        assert [r.tid for r in final.records_from(0)] == [1, 3]
        final.close()

    @pytest.mark.parametrize("cut", range(1, _TAIL_FRAME + 1))
    def test_torn_tail_truncation_sweep(self, tmp_path, cut):
        """A partial final write of *any* length is detected and dropped."""
        path = tmp_path / "wal.log"
        self._two_record_log(path)
        tear_log_tail(path, drop_bytes=cut)
        self._assert_tail_dropped_and_log_usable(path)

    @pytest.mark.parametrize("offset", range(1, _TAIL_FRAME + 1))
    def test_garbled_tail_sweep(self, tmp_path, offset):
        """A single bit flipped at any byte of the final frame is caught.

        The flip may land in the length field (frame geometry breaks), the
        CRC field, or the record bytes (CRC32 detects every single-bit
        error) — all must truncate to the last good frame.
        """
        path = tmp_path / "wal.log"
        self._two_record_log(path)
        tear_log_tail(path, garble_at=-offset)
        self._assert_tail_dropped_and_log_usable(path)

    def test_master_checkpoint_persists(self, tmp_path):
        path = tmp_path / "wal.log"
        log = FileLogManager(path)
        from repro.wal.records import CheckpointEnd

        lsn = log.append(CheckpointEnd(begin_lsn=16))
        log.force()
        log.set_master_checkpoint(lsn)
        log.close()
        reopened = FileLogManager(path)
        assert reopened.master_checkpoint_lsn == lsn
        reopened.close()

    def test_crash_discards_pending(self, tmp_path):
        path = tmp_path / "wal.log"
        log = FileLogManager(path)
        log.append(BeginTxn(tid=1))
        log.force()
        log.append(BeginTxn(tid=2))
        log.crash()
        log.append(BeginTxn(tid=3))
        log.force()
        assert [r.tid for r in log.records_from(0)] == [1, 3]
        log.close()


class TestCrossProcessDurability:
    """The engine-level payoff: kill -9 between force and close."""

    def _simulate_hard_kill(self, db: ImmortalDB) -> None:
        """Drop the engine without close(): only forced state remains."""
        db.log._pending.clear()     # unforced log records die with the process
        db.log._file.close()
        # Cached dirty pages die with the process too (nothing to do: the
        # next open reads the disk file).

    def test_committed_work_survives_hard_kill(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = ImmortalDB(path, buffer_pages=32)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "durable"})
        mark = db.now()
        db.advance_time(1000)
        with db.transaction() as txn:
            table.update(txn, 1, {"v": "also durable"})
        self._simulate_hard_kill(db)

        db2 = ImmortalDB(path, buffer_pages=32)
        table2 = db2.table("t")
        with db2.transaction() as txn:
            assert table2.read(txn, 1)["v"] == "also durable"
        assert table2.read_as_of(mark, 1)["v"] == "durable"
        db2.close()

    def test_open_transaction_rolled_back_across_processes(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = ImmortalDB(path, buffer_pages=32)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "committed"})
        loser = db.begin()
        table.update(loser, 1, {"v": "in-flight"})
        db.log.force()
        db.buffer.flush_all()
        self._simulate_hard_kill(db)

        db2 = ImmortalDB(path, buffer_pages=32)
        with db2.transaction() as txn:
            assert db2.table("t").read(txn, 1)["v"] == "committed"
        db2.close()

    def test_tids_never_repeat_across_opens(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = ImmortalDB(path, buffer_pages=32)
        table = db.create_table("t", COLS, key="k", immortal=True)
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "a"})
        first_tid = txn.tid
        db.close()

        db2 = ImmortalDB(path, buffer_pages=32)
        txn = db2.begin()
        assert txn.tid > first_tid
        db2.table("t").update(txn, 1, {"v": "b"})
        db2.commit(txn)
        # The new commit's PTT entry is its own, not a collision.
        assert db2.ptt.lookup(txn.tid) == txn.commit_ts
        db2.close()

    def test_repeated_kill_reopen_cycles(self, tmp_path):
        path = str(tmp_path / "db.pages")
        expected: dict[int, str] = {}
        for generation in range(5):
            db = ImmortalDB(path, buffer_pages=32)
            if generation == 0:
                table = db.create_table("t", COLS, key="k", immortal=True)
            else:
                table = db.table("t")
                with db.transaction() as txn:
                    got = {r["k"]: r["v"] for r in table.scan(txn)}
                assert got == expected
            with db.transaction() as txn:
                key = generation % 3
                if key in expected:
                    table.update(txn, key, {"v": f"g{generation}"})
                else:
                    table.insert(txn, {"k": key, "v": f"g{generation}"})
                expected[key] = f"g{generation}"
            self._simulate_hard_kill(db)
        db = ImmortalDB(path, buffer_pages=32)
        with db.transaction() as txn:
            got = {r["k"]: r["v"] for r in db.table("t").scan(txn)}
        assert got == expected
        db.close()
