"""Cold-history archive tiering: codec, migration, crash and quarantine.

The invariant under test everywhere: migrating history off the TSB tree
into the delta-compressed archive must be *observationally invisible* —
every as-of point read, history scan and range scan answers identically
before and after migration, across crashes in the middle of migration,
and (degraded, not wrong) when a stored block is damaged.
"""

from __future__ import annotations

import zlib

import pytest

from repro.archive.delta import decode_block, encode_block
from repro.archive.store import ArchiveStore, RECORD_BLOCK
from repro.clock import Timestamp
from repro.core.engine import ImmortalDB
from repro.core.integrity import integrity_report, verify_integrity
from repro.core.rowcodec import ColumnType
from repro.errors import PageQuarantinedError
from repro.faults.crashtest import (
    CrashTestConfig,
    enumerate_crossings,
    replay_crash_point,
)
from repro.repair.quarantine import Degraded
from repro.storage.constants import ARCHIVE_PID_BIT, NO_PAGE
from repro.storage.page import DataPage

ARCHIVE_FAST = {"cold_ms": 200.0, "pages_per_step": 64, "auto": False}


def _build(seed: int = 0, *, rounds: int = 30, keys: int = 8,
           pad: int = 500, **db_kwargs) -> tuple[ImmortalDB, object, list]:
    """A db with enough updated history to force time splits, plus marks."""
    db = ImmortalDB(archive=dict(ARCHIVE_FAST), **db_kwargs)
    table = db.create_table(
        "hist", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", immortal=True,
    )
    filler = "v" * pad
    marks = []
    alive: set[int] = set()
    for r in range(rounds):
        for k in range(keys):
            with db.transaction() as txn:
                value = f"{filler}:s{seed}:r{r}:k{k}"
                if k not in alive:
                    table.insert(txn, {"k": k, "v": value})
                    alive.add(k)
                elif (r + k + seed) % 11 == 3:
                    table.delete(txn, k)
                    alive.discard(k)
                else:
                    table.update(txn, k, {"v": value})
        db.advance_time(60)
        marks.append(db.now())
    db.checkpoint(flush=True)
    return db, table, marks


def _answers(db: ImmortalDB, table, marks, keys: int = 8) -> dict:
    point = {
        (i, k): table.read_as_of(ts, k)
        for i, ts in enumerate(marks) for k in range(keys)
    }
    history = {k: table.history(k) for k in range(keys)}
    scans = {
        i: sorted(
            (row["k"], row["v"]) for row in table.scan_as_of(ts)
        )
        for i, ts in enumerate(marks[:: max(1, len(marks) // 6)])
    }
    return {"point": point, "history": history, "scans": scans}


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------


class TestBlockCodec:
    def test_round_trip_is_byte_identical(self):
        """decode(encode(page)) rebuilds the exact on-disk image."""
        db, table, _ = _build()
        checked = 0
        for leaf in table.btree.leaves():
            pid = leaf.history_page_id
            while pid != NO_PAGE and not pid & ARCHIVE_PID_BIT:
                page = db.buffer.get_page(pid)
                clone = decode_block(encode_block(page), page.page_id)
                assert clone.to_bytes() == page.to_bytes()
                checked += 1
                pid = page.history_page_id
        assert checked >= 5, "workload produced too few history pages"
        db.close()

    def test_blocks_compress_cold_history(self):
        """Versions of one key differ by a few bytes: ≥2x on the wire."""
        db, table, _ = _build(pad=500)
        ratios = []
        for leaf in table.btree.leaves():
            pid = leaf.history_page_id
            while pid != NO_PAGE and not pid & ARCHIVE_PID_BIT:
                page = db.buffer.get_page(pid)
                ratios.append(page.used_bytes / len(encode_block(page)))
                pid = page.history_page_id
        assert ratios and min(ratios) > 1.0
        assert sum(ratios) / len(ratios) >= 2.0
        db.close()

    def test_damaged_blob_raises_page_format_error(self):
        from repro.errors import PageFormatError
        db, table, _ = _build(rounds=10)
        leaf = next(iter(table.btree.leaves()))
        page = db.buffer.get_page(leaf.history_page_id)
        blob = encode_block(page)
        for bad in (b"", blob[:-9], b"\x00" * 16, zlib.compress(b"junk")):
            with pytest.raises(PageFormatError):
                decode_block(bad, page.page_id)
        db.close()


# ---------------------------------------------------------------------------
# store
# ---------------------------------------------------------------------------


class TestArchiveStore:
    def test_crash_drops_unsynced_tail(self):
        store = ArchiveStore()
        a = store.append_block(b"one")
        store.sync()
        store.append_block(b"two")
        store.append_manifest({"x": 1})
        store.crash()
        assert store.record_count == 1
        assert store.read_block(a) == b"one"
        assert store.last_manifest() is None

    def test_file_reopen_ignores_torn_tail(self, tmp_path):
        path = str(tmp_path / "arch")
        store = ArchiveStore(path)
        a = store.append_block(b"alpha")
        store.append_manifest({"refs": []})
        store.sync()
        store.close()
        with open(path, "ab") as fh:  # torn frame: header, no payload
            fh.write(b"\x00\x00\x00\x00\x09")
        reopened = ArchiveStore(path)
        assert reopened.record_count == 2
        assert reopened.read_block(a) == b"alpha"
        assert reopened.last_manifest() == {"refs": []}
        reopened.close()


# ---------------------------------------------------------------------------
# migration equivalence
# ---------------------------------------------------------------------------


class TestMigrationEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_reads_identical_after_migration(self, seed):
        db, table, marks = _build(seed)
        before = _answers(db, table, marks)
        moved = db.archive.drain()
        assert moved > 0
        assert db.stats()["archive_pages_freed"] == moved
        assert _answers(db, table, marks) == before
        assert verify_integrity(db) == []
        db.close()

    def test_equivalence_with_route_cache(self):
        db, table, marks = _build(asof_route_cache=True)
        before = _answers(db, table, marks)
        db.archive.drain()
        assert _answers(db, table, marks) == before
        # A second pass comes from the warmed route/page-view caches.
        assert _answers(db, table, marks) == before
        db.close()

    def test_migration_survives_crash_recovery(self):
        db, table, marks = _build()
        before = _answers(db, table, marks)
        db.archive.drain()
        db.crash()
        db.recover()
        table = db.table("hist")
        assert _answers(db, table, marks) == before
        assert verify_integrity(db) == []
        db.close()

    def test_freed_pages_are_reused(self):
        db, table, _ = _build()
        moved = db.archive.drain()
        assert moved > 0
        freed = set(db.disk.free_list.to_list())
        assert len(freed) == moved
        page_count = db.disk.page_count
        # New history growth should consume the freed pids, smallest first.
        expected_first = min(freed)
        for r in range(12):
            for k in range(8):
                with db.transaction() as txn:
                    try:
                        table.update(txn, k, {"v": "y" * 500 + str(r)})
                    except Exception:
                        table.insert(txn, {"k": k, "v": "y" * 500 + str(r)})
            db.advance_time(60)
        db.checkpoint(flush=True)
        assert db.disk.stats.free_reuses > 0
        # Reuse absorbed the growth: far fewer fresh pages than history added.
        assert db.disk.page_count - page_count < db.disk.stats.free_reuses + 12
        assert expected_first not in db.disk.free_list
        db.close()

    def test_storage_shrinks_at_least_2x(self):
        db, _, _ = _build(pad=400)
        db.archive.drain()
        s = db.stats()
        assert s["archive_bytes_raw"] >= 2 * s["archive_bytes_stored"]
        db.close()

    def test_levelled_merge_consolidates_runs(self):
        db, _, _ = _build(rounds=40)
        db.archive.config.pages_per_step = 2   # many small level-0 runs
        merge_at = db.archive.config.merge_threshold
        db.archive.drain()
        assert db.archive.stats.merges > 0
        levels = {}
        for run in db.archive.runs.values():
            levels[run.level] = levels.get(run.level, 0) + 1
        assert all(count < merge_at for count in levels.values())
        # Refs must still resolve after remapping.
        for i in range(len(db.archive.refs)):
            page = db.archive.materialize(ARCHIVE_PID_BIT | i)
            assert isinstance(page, DataPage)
        db.close()

    def test_auto_mode_migrates_during_checkpoints(self):
        db = ImmortalDB(
            archive={"cold_ms": 200.0, "pages_per_step": 8, "auto": True}
        )
        table = db.create_table(
            "auto", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
            key="k", immortal=True,
        )
        for r in range(30):
            for k in range(8):
                with db.transaction() as txn:
                    if r == 0:
                        table.insert(txn, {"k": k, "v": "z" * 500})
                    else:
                        table.update(txn, k, {"v": "z" * 500 + str(r)})
            db.advance_time(60)
            if r % 5 == 4:
                db.checkpoint()
        assert db.stats()["archive_pages_migrated"] > 0
        db.close()

    def test_defaults_have_no_archive_side_effects(self):
        db = ImmortalDB()
        assert db.archive is None
        assert db.disk.free_list is None
        table = db.create_table(
            "plain", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
            key="k", immortal=True,
        )
        with db.transaction() as txn:
            table.insert(txn, {"k": 1, "v": "x"})
        db.checkpoint(flush=True)
        # The catalog blob must stay byte-identical to the pre-archive
        # format (no "free_pids" key) so figure baselines cannot move.
        assert b"free_pids" not in db.catalog.to_blob()
        assert db.stats()["archive_pages_migrated"] == 0
        db.close()


# ---------------------------------------------------------------------------
# durability across reopen (file-backed)
# ---------------------------------------------------------------------------


class TestFileBackedArchive:
    def test_reopen_serves_archived_history(self, tmp_path):
        path = str(tmp_path / "db.pages")
        db = ImmortalDB(path=path, archive=dict(ARCHIVE_FAST))
        table = db.create_table(
            "hist", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
            key="k", immortal=True,
        )
        marks = []
        for r in range(25):
            for k in range(6):
                with db.transaction() as txn:
                    if r == 0:
                        table.insert(txn, {"k": k, "v": f"{'p' * 500}:{r}"})
                    else:
                        table.update(txn, k, {"v": f"{'p' * 500}:{r}:{k}"})
            db.advance_time(60)
            marks.append(db.now())
        db.checkpoint(flush=True)
        before = _answers(db, table, marks, keys=6)
        assert db.archive.drain() > 0
        tick = db.clock.tick
        db.close()

        db2 = ImmortalDB(path=path, archive=dict(ARCHIVE_FAST))
        db2.clock.advance_ms((tick + 1) * 20)
        table2 = db2.table("hist")
        assert _answers(db2, table2, marks, keys=6) == before
        assert db2.stats()["archive_block_reads"] > 0
        assert verify_integrity(db2) == []
        db2.close()


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------


class TestCompaction:
    def test_compact_reclaims_dead_bytes_invisibly(self):
        db, table, marks = _build(rounds=40)
        db.archive.config.pages_per_step = 2   # many small runs -> merges
        db.archive.config.merge_threshold = 4
        db.archive.drain()
        assert db.archive.stats.merges > 0
        before_bytes = db.archive.store.appended_bytes
        before_answers = _answers(db, table, marks)
        reclaimed = db.archive.compact()
        assert reclaimed > 0
        assert db.archive.store.appended_bytes < before_bytes
        # Merge leftovers and stale manifests are gone; live blocks plus
        # exactly one fresh manifest remain.
        assert db.archive.dead_bytes < before_bytes - db.archive.bytes_stored
        assert db.archive.store.record_count == len(db.archive.refs) + 1
        # Every ref still resolves and every answer is unchanged.
        for pid in _archived_ref_pids(db):
            assert isinstance(db.archive.materialize(pid), DataPage)
        assert _answers(db, table, marks) == before_answers
        assert verify_integrity(db) == []
        s = db.stats()
        assert s["archive_compactions"] == 1
        assert s["archive_bytes_reclaimed"] == reclaimed
        db.close()

    def test_compact_ratio_triggers_from_step(self):
        db, table, marks = _build(rounds=40)
        db.archive.config.pages_per_step = 2
        db.archive.config.merge_threshold = 4
        db.archive.config.compact_ratio = 0.2
        db.archive.config.compact_min_bytes = 256
        db.archive.drain()
        assert db.archive.stats.compactions > 0
        assert db.archive.stats.bytes_reclaimed > 0
        assert verify_integrity(db) == []
        db.close()

    def test_compact_survives_crash_recovery(self):
        """The fresh manifest alone must reconstruct the archive."""
        db, table, marks = _build()
        db.archive.drain()
        db.archive.compact()
        before = _answers(db, table, marks)
        db.crash()
        db.recover()
        assert _answers(db, db.table("hist"), marks) == before
        assert verify_integrity(db) == []
        db.close()

    def test_file_backed_compact_swaps_atomically(self, tmp_path):
        import os

        path = str(tmp_path / "db.pages")
        db = ImmortalDB(path=path, archive=dict(ARCHIVE_FAST))
        table = db.create_table(
            "hist", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
            key="k", immortal=True,
        )
        marks = []
        for r in range(25):
            for k in range(6):
                with db.transaction() as txn:
                    if r == 0:
                        table.insert(txn, {"k": k, "v": f"{'p' * 500}:{r}"})
                    else:
                        table.update(txn, k, {"v": f"{'p' * 500}:{r}:{k}"})
            db.advance_time(60)
            marks.append(db.now())
        db.checkpoint(flush=True)
        db.archive.config.pages_per_step = 2
        db.archive.config.merge_threshold = 4
        db.archive.drain()
        before = _answers(db, table, marks, keys=6)
        store_path = path + ".archive"
        size_before = os.path.getsize(store_path)
        assert db.archive.compact() > 0
        assert os.path.getsize(store_path) < size_before
        assert not os.path.exists(store_path + ".compact")
        tick = db.clock.tick
        db.close()

        db2 = ImmortalDB(path=path, archive=dict(ARCHIVE_FAST))
        db2.clock.advance_ms((tick + 1) * 20)
        assert _answers(db2, db2.table("hist"), marks, keys=6) == before
        assert verify_integrity(db2) == []
        db2.close()

    def test_stale_sidecar_ignored_on_reopen(self, tmp_path):
        """A compaction that died before the swap leaves only garbage."""
        import os

        path = str(tmp_path / "store.archive")
        store = ArchiveStore(path)
        store.append_block(b"live block payload")
        store.sync()
        store.close()
        with open(path + ".compact", "wb") as fh:
            fh.write(b"half-written replacement from a dead compaction")
        reopened = ArchiveStore(path)
        assert not os.path.exists(path + ".compact")
        assert reopened.record_count == 1
        assert reopened.read_block(0) == b"live block payload"
        reopened.close()


# ---------------------------------------------------------------------------
# crash-during-migration sweep
# ---------------------------------------------------------------------------


class TestCrashDuringMigration:
    def test_every_archive_crossing_recovers_clean(self):
        """Crash at each archive.migrate.* / archive.read.* crossing."""
        config = CrashTestConfig(
            archive=True, route_cache=True, transactions=60
        )
        names = enumerate_crossings(config)
        crossings = [
            i for i, name in enumerate(names) if name.startswith("archive.")
        ]
        assert crossings, "workload never reached the archive seams"
        stages = {names[i].rsplit(".", 1)[-1] for i in crossings}
        assert {"select", "append", "sync", "relink", "free"} <= stages
        # The crashtest archive config sets compact_ratio, so the sweep
        # also kills the process inside the compaction protocol.
        compact_stages = {
            names[i].rsplit(".", 1)[-1]
            for i in crossings if names[i].startswith("archive.compact.")
        }
        assert {"begin", "write", "sync", "swap", "done"} <= compact_stages
        failures = []
        for crossing in crossings:
            report = replay_crash_point(config, crossing)
            if not report.ok:
                failures.append((crossing, report.name, report.problems))
        assert not failures, failures


# ---------------------------------------------------------------------------
# quarantine and degraded reads
# ---------------------------------------------------------------------------


def _archived_ref_pids(db) -> list[int]:
    return [ARCHIVE_PID_BIT | i for i in range(len(db.archive.refs))]


def _tamper_block(db, ref_pid: int) -> None:
    """Corrupt the stored bytes behind one archive ref."""
    run_id, block_idx = db.archive.refs[ref_pid & ~ARCHIVE_PID_BIT]
    record = db.archive.runs[run_id].blocks[block_idx].record
    rtype, payload = db.archive.store._records[record]
    assert rtype == RECORD_BLOCK
    db.archive.store._records[record] = (rtype, b"\xde\xad" + payload[2:])


class TestQuarantine:
    def test_damaged_block_quarantines_not_corrupts(self):
        db, table, marks = _build()
        db.archive.drain()
        victim = _archived_ref_pids(db)[0]
        _tamper_block(db, victim)
        with pytest.raises(PageQuarantinedError):
            db.archive.materialize(victim)
        assert victim in db.archive.quarantined
        assert db.archive.stats.quarantined == 1
        # Old reads now degrade (falsy, typed) instead of failing or lying.
        results = [
            table.read_as_of(ts, k)
            for ts in marks for k in range(8)
        ]
        degraded = [r for r in results if isinstance(r, Degraded)]
        assert degraded, "no read routed through the damaged block"
        assert all(not r for r in degraded)
        db.close()

    def test_quarantine_clears_on_recovery(self):
        db, table, marks = _build()
        db.archive.drain()
        victim = _archived_ref_pids(db)[0]
        _tamper_block(db, victim)
        with pytest.raises(PageQuarantinedError):
            db.archive.materialize(victim)
        db.crash()      # the tamper lives in the durable store: it stays,
        db.recover()    # but the quarantine verdict is re-earned on demand
        assert victim not in db.archive.quarantined
        with pytest.raises(PageQuarantinedError):
            db.archive.materialize(victim)
        db.close()


# ---------------------------------------------------------------------------
# integrity cross-checks
# ---------------------------------------------------------------------------


class TestIntegrityCrossChecks:
    def test_clean_archive_reports_no_findings(self):
        db, _, _ = _build()
        db.archive.drain()
        report = integrity_report(db)
        assert [f for f in report.findings if f.kind == "archive"] == []
        db.close()

    def test_fence_mismatch_is_detected(self):
        db, _, _ = _build()
        db.archive.drain()
        run_id, block_idx = db.archive.refs[0]
        meta = db.archive.runs[run_id].blocks[block_idx]
        meta.t_high = Timestamp(meta.t_high.ttime + 999, 0)
        findings = [
            f for f in integrity_report(db).findings if f.kind == "archive"
        ]
        assert findings and any("fence" in f.detail for f in findings)
        db.close()

    def test_unreadable_block_is_detected(self):
        db, _, _ = _build()
        db.archive.drain()
        _tamper_block(db, ARCHIVE_PID_BIT | 0)
        findings = [
            f for f in integrity_report(db).findings if f.kind == "archive"
        ]
        assert findings
        db.close()

    def test_dangling_ref_is_detected(self):
        db, _, _ = _build()
        db.archive.drain()
        db.archive.refs[0] = (999_999, 0)
        findings = [
            f for f in integrity_report(db).findings if f.kind == "archive"
        ]
        assert findings
        db.close()
