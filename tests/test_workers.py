"""Tests for the concurrent worker pool and OCC commit mode."""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro import ColumnType, ImmortalDB
from repro.concurrency.transaction import TxnMode
from repro.core.integrity import verify_integrity
from repro.errors import OCCValidationError
from repro.workers import WorkerPool

COLS = [("k", ColumnType.INT), ("v", ColumnType.INT)]

STRESS = os.environ.get("IMMORTAL_CONCURRENT_STRESS") == "1"


def _make_db(**kwargs) -> tuple[ImmortalDB, object]:
    kwargs.setdefault("buffer_pages", 128)
    db = ImmortalDB(**kwargs)
    table = db.create_table("t", COLS, key="k", immortal=True)
    with db.transaction() as txn:
        for k in range(16):
            table.insert(txn, {"k": k, "v": 0})
    db.flush_commits()
    return db, table


def _increment(table, key):
    def body(txn):
        row = table.read(txn, key)
        table.update(txn, key, {"v": row["v"] + 1})
        return row["v"] + 1
    return body


class TestWorkerPool:
    def test_single_task_commits_durably(self):
        db, table = _make_db()
        with WorkerPool(db, n_workers=2) as pool:
            future = pool.submit(_increment(table, 0))
            assert future.result(10.0) == 1
            assert future.wait_durable(10.0)
            assert future.commit_ts is not None
        with db.transaction() as txn:
            assert table.read(txn, 0)["v"] == 1

    def test_read_only_future_has_no_timestamp(self):
        db, table = _make_db()
        with WorkerPool(db, n_workers=2) as pool:
            future = pool.submit(lambda txn: table.read(txn, 3)["v"])
            assert future.result(10.0) == 0
            assert future.commit_ts is None
            assert future.durable

    def test_conflicting_increments_are_not_lost(self):
        db, table = _make_db()
        n = 40
        with WorkerPool(db, n_workers=4, seed=1) as pool:
            futures = [pool.submit(_increment(table, 7)) for _ in range(n)]
            values = sorted(f.result(30.0) for f in futures)
        assert values == list(range(1, n + 1))   # every increment landed
        with db.transaction() as txn:
            assert table.read(txn, 7)["v"] == n
        assert verify_integrity(db) == []

    def test_task_error_fails_future_and_aborts(self):
        db, table = _make_db()

        def boom(txn):
            table.update(txn, 1, {"v": 99})
            raise ValueError("scripted failure")

        with WorkerPool(db, n_workers=2) as pool:
            future = pool.submit(boom)
            with pytest.raises(ValueError, match="scripted failure"):
                future.result(10.0)
        with db.transaction() as txn:
            assert table.read(txn, 1)["v"] == 0   # rolled back
        assert len(db.txn_mgr.active) == 0

    def test_group_commit_batches_forces(self):
        db, table = _make_db(group_commit_window=8)
        n = 31
        gate = threading.Event()
        before = db.stats()["log_forces"]
        with WorkerPool(db, n_workers=4, seed=2) as pool:
            # A read-only task parks on the gate, keeping in_flight > 0 so
            # the last-active-worker durability flush never triggers while
            # the increments run — forces can only come from full windows.
            gate_future = pool.submit(lambda txn: gate.wait(30.0))
            futures = [
                pool.submit(_increment(table, i % 4)) for i in range(n)
            ]
            for f in futures:
                f.result(30.0)
            gate.set()
            gate_future.result(30.0)
            pool.join()
            for f in futures:
                assert f.wait_durable(10.0)
        forces = db.stats()["log_forces"] - before
        assert forces <= n // 8 + 2       # whole windows, not per-commit
        assert db.txn_mgr.unacked_commits == 0

    def test_retry_counters_reported_in_stats(self):
        db, table = _make_db()
        with WorkerPool(db, n_workers=4, seed=3) as pool:
            futures = [pool.submit(_increment(table, 0)) for _ in range(24)]
            for f in futures:
                f.result(30.0)
        stats = db.stats()
        # Deterministic-counter contract: keys exist and are consistent.
        assert stats["txn_retries"] == db.txn_mgr.txn_retries
        assert stats["lock_waits"] >= 0
        assert stats["deadlocks_detected"] >= 0

    def test_submit_after_close_rejected(self):
        db, table = _make_db()
        pool = WorkerPool(db, n_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(_increment(table, 0))


class TestOCCMode:
    def test_serializable_begin_becomes_occ_snapshot(self):
        db, _ = _make_db(cc_mode="occ")
        txn = db.begin()
        assert txn.occ
        assert txn.mode is TxnMode.SNAPSHOT
        db.commit(txn)

    def test_stale_read_fails_validation(self):
        db, table = _make_db(cc_mode="occ")
        db.enable_concurrency()
        reader = db.begin()
        row = table.read(reader, 5)          # records (t, 5) in read_keys
        assert (table.table_id, table.codec.encode_key(5)) in reader.read_keys
        with db.transaction() as writer:     # commits after reader's snapshot
            table.update(writer, 5, {"v": 42})
        table.update(reader, 6, {"v": row["v"] + 1})   # make it a writer
        with pytest.raises(OCCValidationError):
            db.commit(reader)
        db.abort(reader)
        assert db.stats()["occ_validation_failures"] == 1

    def test_disjoint_read_sets_validate_clean(self):
        db, table = _make_db(cc_mode="occ")
        db.enable_concurrency()
        reader = db.begin()
        table.read(reader, 1)
        with db.transaction() as writer:
            table.update(writer, 9, {"v": 1})     # different key
        table.update(reader, 2, {"v": 5})
        assert db.commit(reader) is not None      # validates fine
        assert db.stats()["occ_validation_failures"] == 0

    def test_read_only_occ_commit_skips_validation(self):
        db, table = _make_db(cc_mode="occ")
        db.enable_concurrency()
        reader = db.begin()
        table.read(reader, 5)
        with db.transaction() as writer:
            table.update(writer, 5, {"v": 42})
        assert db.commit(reader) is None   # snapshot reads stay consistent

    def test_occ_pool_counter_is_exact(self):
        db, table = _make_db(cc_mode="occ")
        n = 30
        with WorkerPool(db, n_workers=4, seed=4) as pool:
            futures = [pool.submit(_increment(table, 2)) for _ in range(n)]
            values = sorted(f.result(30.0) for f in futures)
        assert values == list(range(1, n + 1))
        with db.transaction() as txn:
            assert table.read(txn, 2)["v"] == n
        assert verify_integrity(db) == []


class TestConcurrentOracle:
    """Concurrent history must answer AS OF queries like a serial one."""

    def _run(self, *, workers, tasks, seed, **db_kwargs):
        db, table = _make_db(**db_kwargs)
        commits: list[tuple] = []
        mu = threading.Lock()

        def rmw(key):
            def body(txn):
                row = table.read(txn, key)
                value = row["v"] + 1
                table.update(txn, key, {"v": value})
                return (key, value)
            return body

        rng = random.Random(seed)
        with WorkerPool(db, n_workers=workers, seed=seed) as pool:
            futures = [
                pool.submit(rmw(rng.randrange(8))) for _ in range(tasks)
            ]
            for f in futures:
                key, value = f.result(60.0)
                with mu:
                    commits.append((f.commit_ts, key, value))
        db.flush_commits()

        # Shadow oracle: replay commits in timestamp order.
        commits.sort(key=lambda c: c[0])
        timestamps = [c[0] for c in commits]
        assert len(set(timestamps)) == len(timestamps)
        state = {k: 0 for k in range(16)}
        for ts, key, value in commits:
            state[key] = value
            for k in range(8):
                row = table.read_as_of(ts, k)
                assert row["v"] == state[k], (ts, k)
        assert verify_integrity(db) == []
        return db

    def test_asof_equivalence_small(self):
        self._run(workers=4, tasks=24, seed=11)

    def test_asof_equivalence_group_commit(self):
        self._run(workers=4, tasks=24, seed=12, group_commit_window=4)

    def test_asof_equivalence_under_eviction_pressure(self):
        # A pool far below the working set forces evictions (and batched
        # write-backs) *between* the commits the oracle replays: stale disk
        # images faulting back in, or a flush batch stamping the wrong
        # version, would break AS OF equivalence here.  The fixture's 16
        # rows fit one leaf, so this test builds its own multi-leaf table.
        db = ImmortalDB(
            buffer_pages=4, group_commit_window=4,
            eviction="2q", flush_batch=4,
        )
        table = db.create_table("t", COLS, key="k", immortal=True)
        keys = 600  # ~8 pages: several leaves plus PTT nodes vs. 4 frames
        with db.transaction() as txn:
            for k in range(keys):
                table.insert(txn, {"k": k, "v": 0})
        db.flush_commits()

        def rmw(key):
            def body(txn):
                row = table.read(txn, key)
                value = row["v"] + 1
                table.update(txn, key, {"v": value})
                return (key, value)
            return body

        rng = random.Random(15)
        commits = []
        with WorkerPool(db, n_workers=4, seed=15) as pool:
            futures = [
                pool.submit(rmw(rng.randrange(keys))) for _ in range(48)
            ]
            for f in futures:
                key, value = f.result(60.0)
                commits.append((f.commit_ts, key, value))
        db.flush_commits()

        commits.sort(key=lambda c: c[0])
        state = {k: 0 for k in range(keys)}
        for ts, key, value in commits:
            state[key] = value
            for k in range(0, keys, 77):  # sampled columns of the history
                assert table.read_as_of(ts, k)["v"] == state[k], (ts, k)
        assert verify_integrity(db) == []
        stats = db.stats()
        assert stats["buffer_evictions"] > 0
        assert stats["flush_batches"] > 0

    @pytest.mark.skipif(not STRESS, reason="set IMMORTAL_CONCURRENT_STRESS=1")
    def test_stress_many_workers_many_txns(self):
        db = self._run(
            workers=8, tasks=400, seed=13, group_commit_window=8
        )
        stats = db.stats()
        assert stats["commits"] >= 400

    @pytest.mark.skipif(not STRESS, reason="set IMMORTAL_CONCURRENT_STRESS=1")
    def test_stress_occ_mode(self):
        self._run(workers=8, tasks=200, seed=14, cc_mode="occ")
