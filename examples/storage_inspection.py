#!/usr/bin/env python3
"""Operating a transaction-time database: inspection and verification.

A table that never forgets keeps growing; an operator needs to see where
the bytes went.  This example builds up history, then uses the operations
tooling: per-table storage inspection (page counts, version chains,
utilization — the quantities the split threshold T governs), full-database
integrity verification, and the SQL time-travel surface.

Run:  python examples/storage_inspection.py
"""

from repro import ColumnType, ImmortalDB, verify_integrity
from repro.core.inspect import format_report, inspect_table
from repro.sql import Session


def main() -> None:
    db = ImmortalDB(buffer_pages=512)
    sensors = db.create_table(
        "Sensors",
        columns=[
            ("sensor_id", ColumnType.INT),
            ("reading", ColumnType.FLOAT),
            ("status", ColumnType.TEXT),
        ],
        key="sensor_id",
        immortal=True,
    )

    # A fleet of sensors reporting for a while.
    with db.transaction() as txn:
        for s in range(40):
            sensors.insert(txn, {
                "sensor_id": s, "reading": 20.0, "status": "ok",
            })
    for minute in range(120):
        db.advance_time(60_000)
        with db.transaction() as txn:
            for s in range(40):
                sensors.update(txn, s, {
                    "reading": 20.0 + (minute * 7 + s) % 13,
                    "status": "ok" if minute % 17 else "recalibrating",
                })

    # 1. Storage inspection: where did 4,840 versions go?
    info = inspect_table(sensors)
    print(format_report(info))
    assert info.live_records == 40
    assert info.total_versions >= 40 * 121
    assert info.history_pages >= 1

    # 2. Integrity verification: every invariant, every page.
    problems = verify_integrity(db)
    print(f"\nintegrity check: "
          f"{'CLEAN' if not problems else problems}")
    assert problems == []

    # 3. The same after a crash — recovery preserves every invariant.
    db.crash_and_recover()
    assert verify_integrity(db) == []
    print("integrity after crash + recovery: CLEAN")

    # 4. Time travel over a sensor via SQL.
    session = Session(db)
    rows = session.execute(
        "SELECT HISTORY OF Sensors WHERE sensor_id = 7"
    ).rows
    print(f"\nsensor 7 has {len(rows)} recorded states; last three:")
    for row in rows[-3:]:
        print(f"  {row['_start_time']}  reading={row['reading']:.1f} "
              f"status={row['status']}")
    assert len(rows) == 121


if __name__ == "__main__":
    main()
