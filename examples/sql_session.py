#!/usr/bin/env python3
"""The SQL surface, including the paper's exact syntax extensions.

Runs the statements from Sections 4.1 and 4.2 verbatim — the
``CREATE IMMORTAL TABLE`` of the MovingObjects table and the
``Begin Tran AS OF "…"`` historical query — plus snapshot-isolation
sessions showing lock-free readers.

Run:  python examples/sql_session.py
"""

from repro import ImmortalDB
from repro.sql import Session


def main() -> None:
    db = ImmortalDB()
    session = Session(db)

    # The paper's Section 4.1 DDL, verbatim.
    result = session.execute(
        "Create IMMORTAL Table MovingObjects "
        "(Oid smallint PRIMARY KEY, LocationX int, LocationY int) "
        "ON [PRIMARY]"
    )
    print(result.message)

    for oid in range(20):
        session.execute(
            f"INSERT INTO MovingObjects VALUES ({oid}, {oid * 3}, {oid * 5})"
        )
    # Datetime strings are second-granular; move clearly past the inserts.
    db.advance_time(60_000)
    past = db.clock.now_datetime()
    print(f"captured time: {past:%m/%d/%Y %H:%M:%S}")

    db.advance_time(3_600_000)  # an hour of object movement
    session.execute("UPDATE MovingObjects SET LocationX = 999 WHERE Oid < 5")
    session.execute("DELETE FROM MovingObjects WHERE Oid = 7")

    # The paper's Section 4.2 historical transaction, verbatim shape.
    session.execute(f'Begin Tran AS OF "{past:%m/%d/%Y %H:%M:%S}"')
    rows = session.execute(
        "SELECT * FROM MovingObjects WHERE Oid < 10"
    ).rows
    session.execute("Commit Tran")
    print(f"AS OF query returned {len(rows)} rows; object 0 was at "
          f"({rows[0]['LocationX']}, {rows[0]['LocationY']})")
    assert len(rows) == 10               # object 7 still existed back then
    assert rows[0]["LocationX"] == 0     # before the update

    # The same data, current time:
    now_rows = session.execute(
        "SELECT * FROM MovingObjects WHERE Oid < 10 ORDER BY Oid"
    ).rows
    print(f"current query returned {len(now_rows)} rows; object 0 is at "
          f"({now_rows[0]['LocationX']}, {now_rows[0]['LocationY']})")
    assert len(now_rows) == 9            # object 7 is deleted now
    assert now_rows[0]["LocationX"] == 999

    # Inline AS OF on a SELECT (no transaction bracket needed):
    inline = session.execute(
        f"SELECT Oid, LocationX FROM MovingObjects "
        f"AS OF '{past:%Y-%m-%d %H:%M:%S}' WHERE Oid = 7"
    ).rows
    print(f"inline AS OF found the deleted object: {inline}")

    # Snapshot isolation: a reader session is never blocked by a writer.
    session.execute("CREATE TABLE Prices (sku INT PRIMARY KEY, cents INT)")
    session.execute("ALTER TABLE Prices ENABLE SNAPSHOT")
    session.execute("INSERT INTO Prices VALUES (1, 500), (2, 750)")

    reader = Session(db)
    reader.execute("BEGIN SNAPSHOT TRAN")
    before = reader.execute("SELECT * FROM Prices WHERE sku = 1").rows

    writer = Session(db)
    writer.execute("UPDATE Prices SET cents = 599 WHERE sku = 1")

    still = reader.execute("SELECT * FROM Prices WHERE sku = 1").rows
    reader.execute("COMMIT TRAN")
    print(f"snapshot reader saw {before[0]['cents']} before and "
          f"{still[0]['cents']} after a concurrent committed update "
          f"(repeatable ✓)")
    assert before == still
    fresh = Session(db).execute("SELECT * FROM Prices WHERE sku = 1").rows
    assert fresh[0]["cents"] == 599


if __name__ == "__main__":
    main()
