#!/usr/bin/env python3
"""Data auditing: the bank-account scenario from the paper's introduction.

"For auditing purposes, a bank finds it useful to keep previous states of
the database to check that account balances are correct and to provide
customers with a detailed history of their account" (Section 1.1).

An immortal Accounts table records every balance change automatically —
no audit triggers, no shadow tables.  The audit then:

* replays a customer's statement from the record history,
* verifies conservation of money across every historical state,
* pinpoints exactly when a suspicious balance appeared (AS OF bisection).

Run:  python examples/banking_audit.py
"""

from repro import ColumnType, ImmortalDB


def main() -> None:
    db = ImmortalDB()
    accounts = db.create_table(
        "Accounts",
        columns=[
            ("acct", ColumnType.INT),
            ("owner", ColumnType.TEXT),
            ("balance", ColumnType.INT),   # cents
        ],
        key="acct",
        immortal=True,
    )

    with db.transaction() as txn:
        accounts.insert(txn, {"acct": 1, "owner": "alice", "balance": 100_00})
        accounts.insert(txn, {"acct": 2, "owner": "bob", "balance": 250_00})
        accounts.insert(txn, {"acct": 3, "owner": "carol", "balance": 0})
    opening = db.now()

    def transfer(src: int, dst: int, cents: int) -> None:
        """One atomic transfer = one transaction = one auditable state."""
        db.advance_time(3_600_000)  # an hour between business events
        with db.transaction() as txn:
            a = accounts.read(txn, src)
            b = accounts.read(txn, dst)
            assert a["balance"] >= cents, "insufficient funds"
            accounts.update(txn, src, {"balance": a["balance"] - cents})
            accounts.update(txn, dst, {"balance": b["balance"] + cents})

    transfer(2, 1, 75_00)
    transfer(1, 3, 40_00)
    transfer(2, 3, 10_00)
    statement_cutoff = db.now()
    transfer(3, 2, 25_00)

    # 1. Customer statement: carol's balance history, straight from storage.
    print("carol's account history:")
    for ts, row in accounts.history(3):
        print(f"  {ts}  balance {row['balance'] / 100:8.2f}")
    assert [row["balance"] for _, row in accounts.history(3)] == \
        [0, 40_00, 50_00, 25_00]

    # 2. Conservation audit: total money is identical in EVERY past state.
    def total_at(ts) -> int:
        return sum(row["balance"] for row in accounts.scan_as_of(ts))

    opening_total = total_at(opening)
    for label, ts in (("opening", opening),
                      ("statement cutoff", statement_cutoff),
                      ("now", db.now())):
        total = total_at(ts)
        print(f"total at {label:>17}: {total / 100:8.2f}")
        assert total == opening_total, "money appeared or vanished!"

    # 3. Forensics: when did alice's balance first exceed 150.00?
    history = accounts.history(1)
    first = next(ts for ts, row in history if row["balance"] > 150_00)
    print(f"alice first exceeded 150.00 at {first}")
    just_before = accounts.read_as_of(
        type(first)(first.ttime, first.sn - 1) if first.sn else first, 1
    )
    print(f"balance in the preceding state: "
          f"{just_before['balance'] / 100:.2f}")
    print("audit complete ✓")


if __name__ == "__main__":
    main()
