#!/usr/bin/env python3
"""Queryable backup and point-in-time recovery (paper Section 7.2).

"The data versions preserved in a transaction time database can be used to
provide backup for the current database state.  Such a backup is done
incrementally, is query-able, and can always be online" (Section 1.1).

This example runs a small order-processing load, freezes a backup point,
suffers an "erroneous transaction" that corrupts the table, and recovers by
materializing the pre-corruption state — no backup media, no redo-log
roll-forward, just the versions already in the database.

Run:  python examples/queryable_backup.py
"""

from repro import ColumnType, ImmortalDB
from repro.core.backup import QueryableBackup


def main() -> None:
    db = ImmortalDB()
    orders = db.create_table(
        "Orders",
        columns=[
            ("order_id", ColumnType.INT),
            ("customer", ColumnType.TEXT),
            ("status", ColumnType.TEXT),
            ("total", ColumnType.INT),
        ],
        key="order_id",
        immortal=True,
    )

    # Normal business: orders arrive and progress.
    for i in range(40):
        db.advance_time(60_000)
        with db.transaction() as txn:
            orders.insert(txn, {
                "order_id": i, "customer": f"cust-{i % 7}",
                "status": "placed", "total": 100 + i,
            })
    for i in range(0, 40, 2):
        db.advance_time(60_000)
        with db.transaction() as txn:
            orders.update(txn, i, {"status": "shipped"})

    backup = QueryableBackup(orders)
    split_pages = backup.freeze()
    safe_point = db.now()
    status = backup.status()
    print(f"backup frozen: {split_pages} pages time-split; "
          f"{status.history_pages} history pages hold "
          f"{status.history_versions} versions "
          f"(always installed, incremental, online)")

    # Disaster: an erroneous batch job zeroes every total.
    db.advance_time(60_000)
    with db.transaction() as txn:
        for i in range(40):
            orders.update(txn, i, {"total": 0, "status": "VOID"})
    with db.transaction() as txn:
        damaged = orders.scan(txn)
    assert all(row["total"] == 0 for row in damaged)
    print("erroneous transaction committed: all 40 orders voided")

    # The backup is QUERYABLE without any restore step:
    good_rows = orders.scan_as_of(safe_point)
    shipped = sum(1 for r in good_rows if r["status"] == "shipped")
    print(f"querying the backup directly: {len(good_rows)} orders, "
          f"{shipped} shipped, revenue "
          f"{sum(r['total'] for r in good_rows)}")

    # Point-in-time recovery: materialize the safe state alongside.
    restored = backup.restore_as_of(safe_point, "Orders_recovered")
    with db.transaction() as txn:
        rows = restored.scan(txn)
    assert len(rows) == 40
    assert all(row["total"] > 0 for row in rows)
    print(f"restored {len(rows)} orders into Orders_recovered; "
          f"the damaged table remains for forensics")

    # And the whole thing survives a crash.
    db.crash_and_recover()
    restored = db.table("Orders_recovered")
    with db.transaction() as txn:
        assert len(restored.scan(txn)) == 40
    assert len(db.table("Orders").scan_as_of(safe_point)) == 40
    print("crash + recovery: backup and restore both intact ✓")


if __name__ == "__main__":
    main()
