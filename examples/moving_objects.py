#!/usr/bin/env python3
"""The paper's evaluation scenario: moving objects on a road network.

Objects (vehicles, cyclists, …) appear on a synthetic road network, report
their position every two simulated seconds, and stop when they reach their
destination — each report is one transaction against an immortal table,
exactly as in the paper's Section 5.  The history then answers:

* "where was everything at time T?"  (AS OF full scan),
* "what trajectory did object 7 follow?"  (time travel over one record),
* "which objects were within this box at time T?"  (AS OF + predicate).

Run:  python examples/moving_objects.py
"""

from repro import ColumnType, ImmortalDB
from repro.bench.harness import apply_event
from repro.workloads.moving_objects import MovingObjectWorkload


def main() -> None:
    db = ImmortalDB(buffer_pages=2048, ms_per_commit=0.0)
    objects = db.create_table(
        "MovingObjects",
        columns=[
            ("Oid", ColumnType.SMALLINT),
            ("LocationX", ColumnType.INT),
            ("LocationY", ColumnType.INT),
        ],
        key="Oid",
        immortal=True,
    )

    workload = MovingObjectWorkload(objects=60, seed=42)
    marks = []
    for i, event in enumerate(workload.events(max_events=3000)):
        if i % 500 == 0:
            marks.append((i, db.now()))
        apply_event(db, objects, event)
    print(f"replayed 3000 transactions "
          f"({db.stats()['commits']} commits, "
          f"{objects.btree.stats.time_splits} time splits)")

    # Where was everything after the first 500 transactions?
    txn_no, early = marks[1]
    early_positions = objects.scan_as_of(early)
    with db.transaction() as txn:
        now_positions = objects.scan(txn)
    print(f"objects on the map at txn {txn_no}: {len(early_positions)}; "
          f"now: {len(now_positions)}")

    # Trajectory of one object: its full version history.
    oid = now_positions[7]["Oid"]
    trajectory = objects.history(oid)
    print(f"object {oid} reported {len(trajectory)} positions; first three:")
    for ts, row in trajectory[:3]:
        print(f"  {ts}  ({row['LocationX']}, {row['LocationY']})")
    distance_checks = [
        abs(b[1]["LocationX"] - a[1]["LocationX"])
        + abs(b[1]["LocationY"] - a[1]["LocationY"])
        for a, b in zip(trajectory, trajectory[1:])
    ]
    assert any(d > 0 for d in distance_checks), "the object moved"

    # Spatial predicate at a past time: who was in the south-west quadrant?
    xs = [row["LocationX"] for row in early_positions]
    ys = [row["LocationY"] for row in early_positions]
    mid_x, mid_y = sorted(xs)[len(xs) // 2], sorted(ys)[len(ys) // 2]
    in_box = [
        row for row in early_positions
        if row["LocationX"] <= mid_x and row["LocationY"] <= mid_y
    ]
    print(f"objects in the SW quadrant at txn {txn_no}: {len(in_box)}")

    # The paper's own query (Section 4.2): the first ten objects, as of then.
    first_ten = [
        row for row in objects.scan_as_of(early) if row["Oid"] < 10
    ]
    print(f"SELECT * FROM MovingObjects AS OF <txn {txn_no}> "
          f"WHERE Oid < 10 -> {len(first_ten)} rows")


if __name__ == "__main__":
    main()
