#!/usr/bin/env python3
"""Crash recovery with unlogged timestamping — the paper's subtlest protocol.

Demonstrates, end to end:

* committed work (including history) survives a simulated power failure;
* a transaction caught in flight is rolled back by recovery;
* lazy timestamping is NEVER logged, yet finishes correctly after the
  crash: redo recreates TID-marked record versions, and the persistent
  timestamp table (whose entries survive precisely because garbage
  collection is gated on the redo scan start point) supplies their
  timestamps on the next access.

Run:  python examples/crash_recovery.py
"""

from repro import ColumnType, ImmortalDB


def main() -> None:
    db = ImmortalDB()
    inventory = db.create_table(
        "Inventory",
        columns=[
            ("sku", ColumnType.INT),
            ("stock", ColumnType.INT),
        ],
        key="sku",
        immortal=True,
    )

    with db.transaction() as txn:
        for sku in range(10):
            inventory.insert(txn, {"sku": sku, "stock": 100})
    baseline = db.now()

    db.advance_time(5_000)
    with db.transaction() as txn:
        inventory.update(txn, 3, {"stock": 80})
    committed_ts = txn.commit_ts
    print(f"committed an update at {committed_ts}")

    # A transaction is mid-flight when the power goes out...
    doomed = db.begin()
    inventory.update(doomed, 3, {"stock": -999})
    inventory.update(doomed, 4, {"stock": -999})
    db.log.force()          # even durable log records don't save a loser
    db.buffer.flush_all()   # even its flushed pages don't

    print("power failure!")
    report = db.crash_and_recover()
    print(f"recovery: {report.redo_applied} redo actions, "
          f"losers rolled back: {report.losers} "
          f"({report.undo_actions} undo actions)")
    assert doomed.tid in report.losers

    inventory = db.table("Inventory")
    with db.transaction() as txn:
        row3 = inventory.read(txn, 3)
        row4 = inventory.read(txn, 4)
    print(f"after recovery: sku 3 stock={row3['stock']}, "
          f"sku 4 stock={row4['stock']}")
    assert row3["stock"] == 80 and row4["stock"] == 100

    # History survived too — including timestamps that were never logged.
    assert inventory.read_as_of(baseline, 3)["stock"] == 100
    versions = inventory.history(3)
    assert versions[-1][0] == committed_ts, (
        "the version redo recreated was re-stamped with the ORIGINAL "
        "commit timestamp, recovered via the persistent timestamp table"
    )
    print(f"history of sku 3: "
          f"{[(str(ts), row['stock']) for ts, row in versions]}")
    print("unlogged lazy timestamping completed across the crash ✓")


if __name__ == "__main__":
    main()
