#!/usr/bin/env python3
"""Quickstart: an immortal table in five minutes.

Creates a transaction-time table, updates it, and shows the three query
modes the paper's engine supports: current-time reads, AS OF reads of any
past state, and full per-record history (time travel).

Run:  python examples/quickstart.py
"""

from repro import ColumnType, ImmortalDB


def main() -> None:
    db = ImmortalDB()  # in-memory; pass a path for a file-backed database
    employees = db.create_table(
        "Employees",
        columns=[
            ("emp_id", ColumnType.INT),
            ("name", ColumnType.TEXT),
            ("department", ColumnType.TEXT),
            ("salary", ColumnType.INT),
        ],
        key="emp_id",
        immortal=True,   # == CREATE IMMORTAL TABLE: history is kept forever
    )

    # J. Smith joins (the paper's Section 1.1 example, roughly).
    with db.transaction() as txn:
        employees.insert(txn, {
            "emp_id": 1, "name": "J. Smith",
            "department": "Widgets", "salary": 50_000,
        })
    hired_at = db.now()
    print(f"hired at     {hired_at}")

    # Time passes; Smith gets a raise and a transfer.
    db.advance_time(90 * 24 * 3600 * 1000)  # ~a quarter, in ms
    with db.transaction() as txn:
        employees.update(txn, 1, {"salary": 58_000})
    raise_at = db.now()
    print(f"raise at     {raise_at}")

    db.advance_time(30 * 24 * 3600 * 1000)
    with db.transaction() as txn:
        employees.update(txn, 1, {"department": "Gadgets"})

    # 1. Current-time read: the ordinary query any database answers.
    with db.transaction() as txn:
        now_row = employees.read(txn, 1)
    print(f"now          {now_row}")
    assert now_row["department"] == "Gadgets" and now_row["salary"] == 58_000

    # 2. AS OF reads: the database as it was at any earlier moment.
    at_hire = employees.read_as_of(hired_at, 1)
    print(f"as of hire   {at_hire}")
    assert at_hire["salary"] == 50_000 and at_hire["department"] == "Widgets"

    after_raise = employees.read_as_of(raise_at, 1)
    assert after_raise["salary"] == 58_000
    assert after_raise["department"] == "Widgets"

    # 3. Time travel: every version of the record, with its start time.
    print("history:")
    for start_ts, row in employees.history(1):
        state = "deleted" if row is None else \
            f"{row['department']:>8} at {row['salary']}"
        print(f"  {start_ts}  {state}")
    assert len(employees.history(1)) == 3

    # Nothing is ever lost — deletes just write a stub.
    with db.transaction() as txn:
        employees.delete(txn, 1)
    with db.transaction() as txn:
        assert employees.read(txn, 1) is None
    assert employees.read_as_of(raise_at, 1) is not None
    print("after delete, the past is still queryable ✓")


if __name__ == "__main__":
    main()
