"""Wall-clock throughput harness: the engine's perf trajectory, guarded.

Unlike the figure benchmarks (which report *simulated* 2005-hardware
milliseconds), this harness times the Python engine itself: seeded
insert-only, mixed insert/update, and as-of read workloads against a
file-backed database, reporting wall-clock ops/sec alongside the simulated
cost and the raw engine counters.  The JSON it emits
(``BENCH_throughput.json``) is the committed baseline CI compares against:
``--compare`` fails the run when any workload regresses by more than
``--tolerance`` (default 30 %).

Run it:

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --quick --compare BENCH_throughput.json                     # gate

The script also runs unmodified against pre-group-commit builds (the
engine-constructor fallback below), which is how before/after numbers are
produced from the same workload definitions.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time

if __package__ in (None, ""):  # direct script invocation without PYTHONPATH
    _SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core.engine import ImmortalDB
from repro.core.rowcodec import ColumnType

SEED = 11
GROUP_COMMIT_WINDOW = 8
VALUE_PAD = 120

# Counters worth carrying into the JSON (a stable, meaningful subset).
COUNTER_KEYS = (
    "commits", "log_forces", "log_appends", "log_bytes",
    "page_flushes", "buffer_evictions", "disk_writes",
    "disk_sequential_writes", "stamps", "version_ops",
    "asof_page_reads", "asof_chain_steps",
    "route_cache_hits", "route_cache_misses",
)


def _build_db(
    tmpdir: str, *, group_commit_window: int, route_cache: bool = False,
    buffer_pages: int = 256, media_recovery: bool = False,
) -> ImmortalDB:
    path = os.path.join(tmpdir, "bench.db")
    kwargs = dict(path=path, buffer_pages=buffer_pages, ms_per_commit=5.0)
    if media_recovery:
        kwargs.update(media_recovery=True, page_checksums=True)
    if route_cache:
        try:
            return ImmortalDB(
                group_commit_window=group_commit_window,
                asof_route_cache=True, **kwargs,
            )
        except TypeError:
            pass  # pre-route-cache engine: fall through
    try:
        return ImmortalDB(group_commit_window=group_commit_window, **kwargs)
    except TypeError:
        # Pre-group-commit engine: every commit forces the log itself.
        return ImmortalDB(**kwargs)


def _make_table(db: ImmortalDB):
    return db.create_table(
        "bench", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", immortal=True,
    )


def _value(rng: random.Random, i: int) -> str:
    return f"v{i}-" + "x" * rng.randrange(VALUE_PAD)


def _flush_commits(db: ImmortalDB) -> None:
    flush = getattr(db, "flush_commits", None)
    if flush is not None:
        flush()
    else:
        db.log.force()


def _run_inserts(db: ImmortalDB, table, ops: int) -> int:
    rng = random.Random(SEED)
    for i in range(ops):
        with db.transaction() as txn:
            table.insert(txn, {"k": i, "v": _value(rng, i)})
    _flush_commits(db)
    return ops


def _run_mixed(db: ImmortalDB, table, ops: int, tick=None) -> int:
    """Single-record transactions: seed inserts, then a 50/50 mix.

    ``tick(i)``, when given, runs after every transaction — the hook the
    scrub-overhead mode uses to interleave scrubber steps with the load.
    """
    rng = random.Random(SEED + 1)
    seeded = max(1, ops // 4)
    live = list(range(seeded))
    for i in range(seeded):
        with db.transaction() as txn:
            table.insert(txn, {"k": i, "v": _value(rng, i)})
        if tick is not None:
            tick(i)
    next_key = seeded
    for i in range(ops - seeded):
        if rng.random() < 0.5:
            with db.transaction() as txn:
                table.insert(txn, {"k": next_key, "v": _value(rng, i)})
            live.append(next_key)
            next_key += 1
        else:
            key = live[rng.randrange(len(live))]
            with db.transaction() as txn:
                table.update(txn, key, {"v": _value(rng, i)})
        if tick is not None:
            tick(seeded + i)
    _flush_commits(db)
    return ops


def _prepare_asof(db: ImmortalDB, table, keys: int, versions: int):
    """Load ``keys`` records with ``versions`` versions each; return marks."""
    rng = random.Random(SEED + 2)
    marks = []
    for v in range(versions):
        for k in range(keys):
            with db.transaction() as txn:
                if v == 0:
                    table.insert(txn, {"k": k, "v": _value(rng, v)})
                else:
                    table.update(txn, k, {"v": _value(rng, v)})
        _flush_commits(db)
        db.advance_time(500.0)
        marks.append(db.now())
    return marks


def _run_asof(db: ImmortalDB, table, marks, queries: int, keys: int) -> int:
    rng = random.Random(SEED + 3)
    hits = 0
    for _ in range(queries):
        ts = marks[rng.randrange(len(marks))]
        key = rng.randrange(keys)
        if table.read_as_of(ts, key) is not None:
            hits += 1
    assert hits == queries, "as-of probe missed rows it loaded itself"
    return queries


def _scan_iter(table, ts):
    """Streaming as-of scan with list() fallback for older tables."""
    it = getattr(table, "scan_as_of_iter", None)
    return it(ts) if it is not None else iter(table.scan_as_of(ts))


def _run_scan_asof(db: ImmortalDB, table, marks, queries: int) -> int:
    """Full-table AS OF scans against deep history, random time marks."""
    rng = random.Random(SEED + 4)
    total = 0
    for _ in range(queries):
        ts = marks[rng.randrange(len(marks))]
        rows = table.scan_as_of(ts)
        assert rows, "as-of scan returned nothing at a known mark"
        total += len(rows)
    assert total > 0
    return queries


def _run_scan_range(db: ImmortalDB, table, marks, queries: int,
                    keys: int) -> int:
    """Narrow range scans plus LIMIT-style early-stopped as-of scans."""
    rng = random.Random(SEED + 5)
    span = max(4, keys // 16)
    for i in range(queries):
        if i % 2 == 0:
            low = rng.randrange(keys - span)
            with db.transaction() as txn:
                rows = table.scan_range(txn, low, low + span - 1)
            assert rows
        else:
            # First-10-rows consumer: streaming scans stop early here.
            ts = marks[rng.randrange(len(marks))]
            first = []
            for row in _scan_iter(table, ts):
                first.append(row)
                if len(first) >= 10:
                    break
            assert first
    return queries


def _run_history(db: ImmortalDB, table, queries: int, keys: int) -> int:
    rng = random.Random(SEED + 6)
    for _ in range(queries):
        key = rng.randrange(keys)
        versions = table.history(key)
        assert versions, "history query found no versions for a loaded key"
    return queries


def _measure(db: ImmortalDB, fn) -> dict:
    from repro.bench.costmodel import COST_2005, stats_delta

    before = db.stats()
    start = time.perf_counter()
    ops = fn()
    wall = time.perf_counter() - start
    delta = stats_delta(before, db.stats())
    counters = {k: delta[k] for k in COUNTER_KEYS if k in delta}
    return {
        "ops": ops,
        "wall_seconds": round(wall, 6),
        "ops_per_sec": round(ops / wall, 1) if wall > 0 else float("inf"),
        "simulated_ms": round(COST_2005.simulated_ms(delta), 3),
        "counters": counters,
    }


def run_workloads(*, quick: bool, group_commit_window: int) -> dict:
    scale = 1 if quick else 5
    results: dict = {}

    with tempfile.TemporaryDirectory(prefix="bench_throughput_") as tmp:
        db = _build_db(tmp, group_commit_window=group_commit_window)
        table = _make_table(db)
        results["inserts"] = _measure(
            db, lambda: _run_inserts(db, table, 400 * scale)
        )
        db.close()

    with tempfile.TemporaryDirectory(prefix="bench_throughput_") as tmp:
        db = _build_db(tmp, group_commit_window=group_commit_window)
        table = _make_table(db)
        results["mixed"] = _measure(
            db, lambda: _run_mixed(db, table, 600 * scale)
        )
        db.close()

    with tempfile.TemporaryDirectory(prefix="bench_throughput_") as tmp:
        db = _build_db(tmp, group_commit_window=group_commit_window)
        table = _make_table(db)
        keys = 60 * scale
        marks = _prepare_asof(db, table, keys, versions=4)
        results["asof"] = _measure(
            db, lambda: _run_asof(db, table, marks, 300 * scale, keys)
        )
        db.close()

    # Historical scan workloads run with the as-of route cache enabled
    # (ignored by engines that predate it) over a deeper history: more
    # versions per key force time splits, so every query routes through
    # history-page chains — the path the cache accelerates.
    with tempfile.TemporaryDirectory(prefix="bench_throughput_") as tmp:
        db = _build_db(tmp, group_commit_window=group_commit_window,
                       route_cache=True, buffer_pages=1024)
        table = _make_table(db)
        keys = 40 * scale
        marks = _prepare_asof(db, table, keys, versions=10)
        results["scan_asof"] = _measure(
            db, lambda: _run_scan_asof(db, table, marks, 12 * scale)
        )
        results["scan_range"] = _measure(
            db, lambda: _run_scan_range(db, table, marks, 40 * scale, keys)
        )
        results["history"] = _measure(
            db, lambda: _run_history(db, table, 40 * scale, keys)
        )
        db.close()

    # These are the *in-memory* baselines: every workload is sized to fit
    # its buffer pool, and the numbers mean nothing if that silently stops
    # being true (eviction pressure belongs to bench_scale.py).  Fail loud
    # rather than letting the two baselines drift into each other.
    for name, r in results.items():
        evictions = r["counters"].get("buffer_evictions", 0)
        if evictions:
            raise AssertionError(
                f"workload {name!r} evicted {evictions} pages: "
                "bench_throughput must stay in-memory — grow buffer_pages "
                "or shrink the workload (see bench_scale.py for "
                "under-pressure numbers)"
            )

    return results


def _concurrent_tasks(table, ops: int, seed: int):
    """A deterministic mixed task list: the same work for 1 or N workers.

    Half the tasks are read-modify-write updates over a small hot set
    (real lock conflicts, occasional deadlock-retry), half are inserts of
    unique keys.  Tasks are closures over pre-drawn keys so the 1-worker
    and N-worker runs execute byte-identical transaction bodies.
    """
    rng = random.Random(seed)
    tasks = []
    for i in range(ops):
        if rng.random() < 0.5:
            key = rng.randrange(CONCURRENT_HOT_KEYS)

            def rmw(txn, key=key, i=i):
                row = table.read(txn, key)
                table.update(txn, key, {"v": row["v"][:24] + f"+{i}"})

            tasks.append(rmw)
        else:
            key = CONCURRENT_KEY_BASE + i
            value = _value(rng, i)

            def insert(txn, key=key, value=value):
                table.insert(txn, {"k": key, "v": value})

            tasks.append(insert)
    return tasks


CONCURRENT_HOT_KEYS = 64
CONCURRENT_KEY_BASE = 100_000


def run_concurrent_comparison(
    *, quick: bool, workers: int, group_commit_window: int,
    commit_latency_ms: float,
) -> dict:
    """Mixed workload through the worker pool: 1 worker vs ``workers``.

    Both runs use the identical engine configuration — same group-commit
    window and the same simulated commit-force latency (the sleep in
    ``LogManager.force`` releases the GIL).  The speedup therefore
    measures what the concurrent subsystem actually buys: workers overlap
    transaction bodies with the force latency another worker is paying,
    and group commit lets one force ack a whole window of their commits.
    """
    from repro.workers import WorkerPool

    ops = 400 * (1 if quick else 3)
    out: dict = {"workers": workers}
    for label, n_workers in (("single", 1), ("multi", workers)):
        with tempfile.TemporaryDirectory(prefix="bench_conc_") as tmp:
            db = _build_db(tmp, group_commit_window=group_commit_window)
            db.log.force_latency_ms = commit_latency_ms
            table = _make_table(db)
            with db.transaction() as txn:
                for k in range(CONCURRENT_HOT_KEYS):
                    table.insert(txn, {"k": k, "v": "seed"})
            _flush_commits(db)
            tasks = _concurrent_tasks(table, ops, SEED + 7)

            def run() -> int:
                with WorkerPool(db, n_workers=n_workers, seed=SEED) as pool:
                    futures = [pool.submit(task) for task in tasks]
                    for future in futures:
                        future.result(120.0)
                _flush_commits(db)
                return ops

            result = _measure(db, run)
            result["n_workers"] = n_workers
            result["txn_retries"] = db.stats().get("txn_retries", 0)
            out[label] = result
            db.close()
    out["speedup"] = round(
        out["multi"]["ops_per_sec"] / out["single"]["ops_per_sec"], 3
    )
    return out


def run_scrub_overhead(
    *, quick: bool, group_commit_window: int, repeats: int = 3,
) -> dict:
    """The online scrubber's throughput cost under a mixed write load.

    Both runs use the identical self-healing configuration (checksums on,
    media recovery attached) so the measured delta isolates the *scrubber*:
    the "on" run interleaves one budgeted scrub step every 32 transactions
    (4 pages per step — several full passes over the growing database).
    Runs are timed in back-to-back pairs (after one discarded warm-up
    run, alternating order within pairs so warm-up drift favours neither
    side) and the gate applies to the best pair's ratio.  That is the
    right one-sided estimator for a regression gate: noise only ever
    *inflates* apparent cost in a pair, so a genuine >5 % scrubber cost
    shows up in every pair, while one quiet pair is enough to clear a
    healthy run.  The CI gate demands the scrubbed run keeps >= 95 % of
    the unscrubbed throughput.
    """
    from repro.repair.scrub import Scrubber

    # Much longer than the regular quick workloads: the gate is tight (5 %),
    # so each timed run must be long enough that scheduler noise stays below
    # it — sub-second runs swing by ±15 % on a busy machine.
    ops = 7200 * (1 if quick else 3)

    def run(scrub: bool) -> dict:
        with tempfile.TemporaryDirectory(prefix="bench_scrub_") as tmp:
            db = _build_db(tmp, group_commit_window=group_commit_window,
                           media_recovery=True)
            table = _make_table(db)
            tick = None
            scrubber = None
            if scrub:
                scrubber = Scrubber(db, pages_per_step=4)
                tick = lambda i: scrubber.step() if i % 32 == 31 else None
            result = _measure(
                db, lambda: _run_mixed(db, table, ops, tick=tick)
            )
            if scrubber is not None:
                result["scrub"] = {
                    "steps": scrubber.stats.steps,
                    "pages_scanned": scrubber.stats.pages_scanned,
                    "findings": scrubber.stats.findings,
                }
            db.close()
            return result

    run(False)  # warm-up: first run pays import/allocator/CPU-clock costs
    pairs: list[tuple[float, dict, dict]] = []
    for i in range(repeats):
        if i % 2 == 0:
            off, on = run(False), run(True)
        else:
            on, off = run(True), run(False)
        pairs.append((on["ops_per_sec"] / off["ops_per_sec"], off, on))
    ratio, off, on = max(pairs, key=lambda p: p[0])
    return {"off": off, "on": on, "ratio": round(ratio, 4)}


def compare_against(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Regressions beyond ``tolerance`` (fractional) in any shared workload."""
    problems = []
    for name, base in baseline.get("workloads", {}).items():
        now = current["workloads"].get(name)
        if now is None:
            problems.append(f"{name}: missing from current run")
            continue
        floor = base["ops_per_sec"] * (1.0 - tolerance)
        if now["ops_per_sec"] < floor:
            problems.append(
                f"{name}: {now['ops_per_sec']:.0f} ops/s is below "
                f"{floor:.0f} (baseline {base['ops_per_sec']:.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
    base_conc = baseline.get("concurrent")
    now_conc = current.get("concurrent")
    if base_conc and now_conc \
            and base_conc["workers"] == now_conc["workers"]:
        floor = base_conc["multi"]["ops_per_sec"] * (1.0 - tolerance)
        if now_conc["multi"]["ops_per_sec"] < floor:
            problems.append(
                f"concurrent x{now_conc['workers']}: "
                f"{now_conc['multi']['ops_per_sec']:.0f} ops/s is below "
                f"{floor:.0f} (baseline "
                f"{base_conc['multi']['ops_per_sec']:.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_throughput.py",
        description="Wall-clock throughput benchmark with regression gating.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized workloads")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the JSON here (default: print only)")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="fail if ops/sec regresses vs this JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--group-commit", type=int,
                        default=GROUP_COMMIT_WINDOW, metavar="N",
                        help="group-commit window (ignored by old engines)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="also benchmark the worker pool: mixed load "
                             "with 1 worker vs N workers")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail if N-worker ops/s < this multiple of "
                             "the 1-worker run (default 1.5)")
    parser.add_argument("--commit-latency-ms", type=float, default=2.0,
                        help="simulated commit-force latency for the "
                             "--workers comparison, applied identically "
                             "to both runs (default 2.0)")
    parser.add_argument("--scrub-overhead", action="store_true",
                        help="measure the online scrubber's throughput cost "
                             "instead of the standard workloads")
    parser.add_argument("--scrub-tolerance", type=float, default=0.05,
                        help="allowed fractional scrub slowdown (default 0.05)")
    args = parser.parse_args(argv)

    if args.scrub_overhead:
        result = run_scrub_overhead(
            quick=args.quick, group_commit_window=args.group_commit
        )
        off, on = result["off"], result["on"]
        print(f"scrub off: {off['ops_per_sec']:>9.1f} ops/s wall")
        print(f"scrub  on: {on['ops_per_sec']:>9.1f} ops/s wall "
              f"({on['scrub']['steps']} steps, "
              f"{on['scrub']['pages_scanned']} pages scanned, "
              f"{on['scrub']['findings']} findings)")
        print(f"throughput kept: {result['ratio']:.1%} "
              f"(gate: >= {1.0 - args.scrub_tolerance:.0%})")
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(result, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.output}")
        if on["scrub"]["findings"]:
            print("FAIL: scrubber reported findings on a healthy database")
            return 1
        if result["ratio"] < 1.0 - args.scrub_tolerance:
            print("FAIL: scrub overhead exceeds tolerance")
            return 1
        return 0

    workloads = run_workloads(
        quick=args.quick, group_commit_window=args.group_commit
    )
    payload = {
        "quick": args.quick,
        "seed": SEED,
        "group_commit_window": args.group_commit,
        "workloads": workloads,
    }

    for name, r in workloads.items():
        print(f"{name:>8}: {r['ops_per_sec']:>9.1f} ops/s wall "
              f"({r['ops']} ops in {r['wall_seconds']:.3f}s, "
              f"sim {r['simulated_ms']:.0f} ms, "
              f"{r['counters'].get('log_forces', '?')} log forces)")

    concurrent = None
    if args.workers > 1:
        concurrent = run_concurrent_comparison(
            quick=args.quick, workers=args.workers,
            group_commit_window=args.group_commit,
            commit_latency_ms=args.commit_latency_ms,
        )
        payload["concurrent"] = concurrent
        single, multi = concurrent["single"], concurrent["multi"]
        print(f"pool  x1: {single['ops_per_sec']:>9.1f} ops/s wall "
              f"({single['counters'].get('log_forces', '?')} log forces, "
              f"{single['txn_retries']} retries)")
        print(f"pool x{args.workers}: {multi['ops_per_sec']:>9.1f} ops/s "
              f"wall ({multi['counters'].get('log_forces', '?')} log "
              f"forces, {multi['txn_retries']} retries)")
        print(f"speedup: {concurrent['speedup']:.2f}x "
              f"(gate: >= {args.min_speedup:.2f}x)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        problems = compare_against(baseline, payload, args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION {problem}")
            return 1
        print(f"no regression vs {args.compare} "
              f"(tolerance {args.tolerance:.0%})")

    if concurrent is not None and concurrent["speedup"] < args.min_speedup:
        print(f"FAIL: {args.workers}-worker speedup {concurrent['speedup']:.2f}x "
              f"is below the {args.min_speedup:.2f}x gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
