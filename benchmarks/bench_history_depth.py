"""History-depth benchmark: archive tiering under growing version depth.

The cold-history archive exists to answer one scaling question: what
happens as a table accumulates 10x, 100x the history while its current
working set stays constant?  This harness sweeps **value length x history
depth** with archiving enabled and reports, per cell:

* **compression** — raw bytes of the migrated history pages vs stored
  archive bytes.  Version chains of one key differ by a few bytes when
  values are small-to-medium (the varying-value-length methodology in
  PAPERS.md), so delta encoding plus zlib must shrink small-value history
  by at least ``--min-compression`` (default 2.0x);
* **as-of latency** — simulated cost of point reads at a *fixed recency*
  (the same number of rounds back from now, whatever the total depth).
  Chains are newest-first, so a query T rounds back crosses ~T pages
  regardless of how much colder history hangs below them — latency must
  stay within ``--max-latency-ratio`` (default 1.5x) of the shallow
  baseline even when the depth grows 10x;
* **reclamation** — pages migrated, pages freed, and the archive's
  run/block shape after levelled merging.

Costs are priced with the deterministic cost model; archive block
materialization is charged at a sequential-transfer-plus-decode rate
(``archive_block_read_ms = 0.9``) so tiered reads are *not* free — the
flat-latency gate holds because recent-history reads do not touch the
archive at all, not because the archive is costless.  Simulated cost is a
pure function of the engine's counters, so the gates cannot flake; wall
seconds are reported alongside for information only (see EXPERIMENTS.md,
"Why simulated cost is the gated metric").

Run it:

    PYTHONPATH=src python benchmarks/bench_history_depth.py --quick
    PYTHONPATH=src python benchmarks/bench_history_depth.py --quick \
        --compare BENCH_history.json                              # CI gate
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time

if __package__ in (None, ""):  # direct script invocation without PYTHONPATH
    _SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.bench.costmodel import COST_2005, stats_delta
from repro.core.engine import ImmortalDB
from repro.core.rowcodec import ColumnType

SEED = 31

#: archive materialization priced as one sequential transfer + decode CPU
ARCHIVE_COST = dataclasses.replace(
    COST_2005,
    archive_block_read_ms=0.9,
    archive_migrate_page_ms=1.2,
    archive_merge_ms=0.9,
)


@dataclasses.dataclass(frozen=True)
class Sizes:
    keys: int             # fixed current working set
    shallow_depth: int    # versions per key in the shallow baseline
    depth_factor: int     # deep = shallow * factor (the 10x claim)
    probe_rounds: int     # recency window the as-of probes target
    probes: int           # as-of point reads measured per cell
    value_lens: tuple     # payload sizes swept


QUICK = Sizes(
    keys=48, shallow_depth=6, depth_factor=10,
    probe_rounds=3, probes=96, value_lens=(40, 200, 800),
)
FULL = Sizes(
    keys=128, shallow_depth=10, depth_factor=10,
    probe_rounds=5, probes=384, value_lens=(40, 200, 800),
)


def _build_cell(sizes: Sizes, value_len: int, depth: int):
    """One database at one (value_len, depth) cell, history fully archived."""
    db = ImmortalDB(
        buffer_pages=96,
        archive={"cold_ms": 200.0, "pages_per_step": 64, "auto": False},
    )
    table = db.create_table(
        "depth", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", immortal=True,
    )
    filler = "v" * value_len
    marks = []
    for r in range(depth):
        for k in range(sizes.keys):
            # Same-length values whose tail varies: consecutive versions
            # share a long prefix, the shape delta encoding targets.
            value = filler + f"{r % 100:02d}{k % 100:02d}"
            with db.transaction() as txn:
                if r == 0:
                    table.insert(txn, {"k": k, "v": value})
                else:
                    table.update(txn, k, {"v": value})
        db.advance_time(60)
        marks.append(db.now())
    db.checkpoint(flush=True)
    return db, table, marks


def _probe_asof(db, table, marks, sizes: Sizes) -> dict:
    """Point reads at a fixed recency window (the newest ``probe_rounds``)."""
    window = marks[-sizes.probe_rounds :]
    before = db.stats()
    start = time.perf_counter()
    hits = 0
    for i in range(sizes.probes):
        ts = window[i % len(window)]
        if table.read_as_of(ts, i % sizes.keys) is not None:
            hits += 1
    wall = time.perf_counter() - start
    delta = stats_delta(before, db.stats())
    assert hits == sizes.probes, "as-of probes missed rows at known marks"
    return {
        "simulated_ms": round(ARCHIVE_COST.simulated_ms(delta), 3),
        "wall_seconds": round(wall, 6),
        "block_reads": delta.get("archive_block_reads", 0),
    }


def run_cell(sizes: Sizes, value_len: int, depth: int) -> dict:
    db, table, marks = _build_cell(sizes, value_len, depth)
    migrate_before = db.stats()
    migrated = db.archive.drain()
    migrate_delta = stats_delta(migrate_before, db.stats())
    stats = db.stats()
    raw = stats["archive_bytes_raw"]
    stored = stats["archive_bytes_stored"]
    row = {
        "value_len": value_len,
        "depth": depth,
        "pages_migrated": migrated,
        "pages_freed": stats["archive_pages_freed"],
        "runs": stats["archive_runs"],
        "blocks": stats["archive_blocks"],
        "merges": stats["archive_merges"],
        "bytes_raw": raw,
        "bytes_stored": stored,
        "compression_ratio": round(raw / stored, 3) if stored else None,
        "migrate_simulated_ms": round(
            ARCHIVE_COST.simulated_ms(migrate_delta), 3
        ),
        "asof": _probe_asof(db, table, marks, sizes),
    }
    db.close()
    return row


def run_sweep(*, quick: bool) -> dict:
    sizes = QUICK if quick else FULL
    cells = []
    for value_len in sizes.value_lens:
        for depth in (
            sizes.shallow_depth, sizes.shallow_depth * sizes.depth_factor,
        ):
            cells.append(run_cell(sizes, value_len, depth))
    payload: dict = {
        "quick": quick,
        "seed": SEED,
        "keys": sizes.keys,
        "shallow_depth": sizes.shallow_depth,
        "depth_factor": sizes.depth_factor,
        "cells": cells,
    }
    # Latency ratios: deep vs shallow at the same value length and the
    # same probe recency.  The claim under test: colder history below the
    # probe window costs nothing, however deep it grows.
    ratios = {}
    for value_len in sizes.value_lens:
        pair = [c for c in cells if c["value_len"] == value_len]
        shallow = next(
            c for c in pair if c["depth"] == sizes.shallow_depth
        )
        deep = next(
            c for c in pair if c["depth"] != sizes.shallow_depth
        )
        base = shallow["asof"]["simulated_ms"] or 1e-9
        ratios[str(value_len)] = round(
            deep["asof"]["simulated_ms"] / base, 3
        )
    payload["latency_ratio_by_value_len"] = ratios
    return payload


def check_gates(
    payload: dict, *, min_compression: float, max_latency_ratio: float
) -> list[str]:
    problems = []
    for cell in payload["cells"]:
        if cell["pages_migrated"] <= 0:
            problems.append(
                f"value_len={cell['value_len']} depth={cell['depth']}: "
                "no pages migrated — the sweep never exercised the archive"
            )
        if cell["pages_freed"] != cell["pages_migrated"]:
            problems.append(
                f"value_len={cell['value_len']} depth={cell['depth']}: "
                f"freed {cell['pages_freed']} != migrated "
                f"{cell['pages_migrated']}"
            )
    # Compression is a small-value claim: long values dominated by the
    # filler still compress (zlib), but the >= gate applies to the
    # smallest swept length, where delta chains shine.
    smallest = min(c["value_len"] for c in payload["cells"])
    for cell in payload["cells"]:
        if cell["value_len"] == smallest and (
            cell["compression_ratio"] is None
            or cell["compression_ratio"] < min_compression
        ):
            problems.append(
                f"value_len={cell['value_len']} depth={cell['depth']}: "
                f"compression {cell['compression_ratio']}x is below the "
                f"{min_compression}x gate"
            )
    for value_len, ratio in payload["latency_ratio_by_value_len"].items():
        if ratio > max_latency_ratio:
            problems.append(
                f"value_len={value_len}: deep/shallow as-of latency ratio "
                f"{ratio}x exceeds the {max_latency_ratio}x gate "
                f"(depth grew {payload['depth_factor']}x)"
            )
    return problems


def compare_against(
    baseline: dict, current: dict, tolerance: float
) -> list[str]:
    """Regressions beyond ``tolerance`` on the simulated metrics."""
    problems = []
    if baseline.get("quick") != current.get("quick"):
        return [
            "baseline and current run disagree on --quick mode; "
            "absolute simulated_ms is only comparable within one mode"
        ]
    base_cells = {
        (c["value_len"], c["depth"]): c for c in baseline.get("cells", [])
    }
    for cell in current["cells"]:
        base = base_cells.get((cell["value_len"], cell["depth"]))
        if base is None:
            continue
        ceiling = base["asof"]["simulated_ms"] * (1.0 + tolerance)
        if cell["asof"]["simulated_ms"] > ceiling:
            problems.append(
                f"value_len={cell['value_len']} depth={cell['depth']}: "
                f"as-of {cell['asof']['simulated_ms']:.1f} simulated ms is "
                f"above {ceiling:.1f} (baseline "
                f"{base['asof']['simulated_ms']:.1f} + {tolerance:.0%})"
            )
        if base.get("compression_ratio") and cell.get("compression_ratio"):
            floor = base["compression_ratio"] * (1.0 - tolerance)
            if cell["compression_ratio"] < floor:
                problems.append(
                    f"value_len={cell['value_len']} depth={cell['depth']}: "
                    f"compression {cell['compression_ratio']}x is below "
                    f"{floor:.2f}x (baseline {base['compression_ratio']}x "
                    f"- {tolerance:.0%})"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_history_depth.py",
        description="Value-length x history-depth sweep with archive tiering.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized sweep (the committed baseline)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the JSON here (default: print only)")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="fail on simulated regressions vs this JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--min-compression", type=float, default=2.0,
                        help="small-value compression gate (default 2.0x)")
    parser.add_argument("--max-latency-ratio", type=float, default=1.5,
                        help="deep/shallow as-of latency gate (default 1.5x)")
    args = parser.parse_args(argv)

    payload = run_sweep(quick=args.quick)

    print(f"{'vlen':>5} {'depth':>6} {'pages':>6} {'runs':>5} "
          f"{'ratio':>7} {'migrate sim-ms':>14} {'asof sim-ms':>11} "
          f"{'blk-reads':>9}")
    for c in payload["cells"]:
        print(f"{c['value_len']:>5} {c['depth']:>6} "
              f"{c['pages_migrated']:>6} {c['runs']:>5} "
              f"{c['compression_ratio']:>7.2f} "
              f"{c['migrate_simulated_ms']:>14.1f} "
              f"{c['asof']['simulated_ms']:>11.1f} "
              f"{c['asof']['block_reads']:>9}")
    print("deep/shallow as-of latency ratio by value length: "
          + ", ".join(
              f"{k}B={v}x"
              for k, v in payload["latency_ratio_by_value_len"].items()
          ))

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    failed = False
    for problem in check_gates(
        payload,
        min_compression=args.min_compression,
        max_latency_ratio=args.max_latency_ratio,
    ):
        print(f"FAIL {problem}")
        failed = True

    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        problems = compare_against(baseline, payload, args.tolerance)
        for problem in problems:
            print(f"REGRESSION {problem}")
            failed = True
        if not problems:
            print(f"no regression vs {args.compare} "
                  f"(tolerance {args.tolerance:.0%})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
