"""Ablation 1 — Lazy vs eager timestamping (paper Section 2.2).

The paper rejects eager timestamping for three measurable reasons:

1. "Transaction commit is delayed until timestamping is done, extending
   transaction duration … because locks are held for a longer period" —
   we compute the **commit-path** work (what happens between choosing the
   timestamp and releasing locks) for both policies;
2. "Timestamping needs to be logged as well … extra log operations reduce
   system throughput" — eager logs one StampOp per stamped version;
3. "Some of [the revisited records] may not be in main memory.  This can
   result in extra I/Os" — a multi-record-transaction run with a small
   buffer pool shows eager's commit revisits reading evicted pages.
"""

from __future__ import annotations

import random

from conftest import bench_scale

from repro.bench import (
    COST_2005,
    apply_event,
    format_table,
    fresh_moving_objects_db,
    measure,
    save_results,
)
from repro.workloads.moving_objects import MovingObjectWorkload


def _commit_path_ms(delta: dict) -> float:
    """Simulated work inside the lock-holding commit window.

    Eager: revisit pages, stamp versions, append their log records.
    Lazy: the single PTT insert.  (The log force is common to both.)
    """
    return (
        delta["commit_revisit_pages"] * COST_2005.revisit_page_ms
        + (delta["stamps"] * COST_2005.stamp_cpu_ms
           if delta["commit_revisit_pages"] else 0.0)
        + delta["ptt_inserts"] * COST_2005.ptt_insert_ms
    )


def _run_stream(timestamping: str, transactions: int) -> dict:
    db, table = fresh_moving_objects_db(timestamping=timestamping)
    workload = MovingObjectWorkload(objects=200, seed=11)
    events = list(workload.events(max_events=transactions))
    m = measure(db, lambda: [apply_event(db, table, e) for e in events])
    return {
        "policy": timestamping,
        "per_txn_ms": m.simulated_ms / transactions,
        "commit_path_ms_per_txn": _commit_path_ms(m.delta) / transactions,
        "log_appends": m.delta["log_appends"],
        "log_bytes": m.delta["log_bytes"] - m.delta["log_image_bytes"],
        "stamps": m.delta["stamps"],
    }


def _run_cold_buffer(timestamping: str, *, records: int, txns: int,
                     updates_per_txn: int) -> dict:
    """Multi-record transactions over a working set larger than the buffer."""
    db, table = fresh_moving_objects_db(
        timestamping=timestamping, buffer_pages=16
    )
    with db.transaction() as txn:
        for oid in range(records):
            table.insert(txn, {"Oid": oid, "LocationX": 0, "LocationY": 0})
    db.buffer.flush_all()
    rng = random.Random(3)

    def body() -> None:
        for _ in range(txns):
            keys = rng.sample(range(records), updates_per_txn)
            with db.transaction() as t:
                for oid in keys:
                    table.update(t, oid, {"LocationX": 1, "LocationY": 1})

    m = measure(db, body)
    return {
        "policy": timestamping,
        "disk_reads": m.delta["disk_reads"],
        "revisit_pages": m.delta["commit_revisit_pages"],
        "commit_path_ms": _commit_path_ms(m.delta),
        "sim_ms": m.simulated_ms,
    }


def test_abl1_lazy_vs_eager(benchmark, emit):
    scale = bench_scale()
    n = max(1000, int(8000 * scale))
    lazy = _run_stream("lazy", n)
    eager = _run_stream("eager", n)

    records = max(4000, int(20000 * scale))
    cold_lazy = _run_cold_buffer(
        "lazy", records=records, txns=10, updates_per_txn=100
    )
    cold_eager = _run_cold_buffer(
        "eager", records=records, txns=10, updates_per_txn=100
    )

    emit(
        format_table(
            "Abl 1a: lazy vs eager — single-record transaction stream",
            ["policy", "ms/txn", "commit-path ms/txn",
             "log records", "log bytes", "stamps"],
            [
                [r["policy"], r["per_txn_ms"], r["commit_path_ms_per_txn"],
                 r["log_appends"], r["log_bytes"], r["stamps"]]
                for r in (lazy, eager)
            ],
            note="commit-path = work done while locks are still held; "
                 "lazy defers stamping out of the lock window (Section 2.2)",
        )
    )
    emit(
        format_table(
            "Abl 1b: 100-record transactions, 16-page buffer pool",
            ["policy", "disk reads", "commit revisit pages",
             "commit-path ms", "sim ms"],
            [
                [r["policy"], r["disk_reads"], r["revisit_pages"],
                 r["commit_path_ms"], r["sim_ms"]]
                for r in (cold_lazy, cold_eager)
            ],
            note="eager's commit revisits re-read evicted pages: "
                 "'this can result in extra I/Os'",
        )
    )
    save_results(
        "abl1_lazy_vs_eager",
        {"stream": [lazy, eager], "cold": [cold_lazy, cold_eager]},
    )

    # The paper's three charges against eager timestamping:
    assert eager["log_appends"] > lazy["log_appends"]          # extra logging
    assert eager["log_bytes"] > lazy["log_bytes"]
    assert (
        eager["commit_path_ms_per_txn"] >= lazy["commit_path_ms_per_txn"]
    )
    # The commit-delay effect is decisive for multi-record transactions:
    # eager's lock-holding window grows with the number of records written.
    assert cold_eager["commit_path_ms"] > 3 * cold_lazy["commit_path_ms"]
    assert cold_eager["disk_reads"] >= cold_lazy["disk_reads"]  # extra I/O

    benchmark.pedantic(
        lambda: _run_stream("lazy", 500), rounds=1, iterations=1
    )
