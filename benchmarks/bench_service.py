"""Service-layer benchmark: sustained throughput, tail latency, overload.

Two phases against the real asyncio server over real sockets:

* **steady** — concurrent clients running a mixed SQL load well inside the
  admission budget.  Reports acked ops/sec and p50/p99 request latency;
  ``--compare`` gates ops/sec against the committed baseline
  (``BENCH_service.json``).

* **overload** — many more clients than the (deliberately tiny) admission
  budget, hammering with no pacing.  This is the phase that proves the
  robustness story: shedding must keep the service *useful*, not merely
  alive.  Three hard gates, all CI-enforced:

  - goodput stays nonzero (writes keep draining while reads shed),
  - rejections actually happen (the budget is real), and
  - p99 latency of the *accepted* requests stays bounded
    (``--max-p99-ms``) — queues cannot grow without bound because
    admission rejects above the budget instead of enqueueing.

  The phase also cross-checks exactness: every acked INSERT is a row,
  every shed INSERT is not — rejected work must never half-execute.

Run it:

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_service.py \
        --quick --compare BENCH_service.json                     # gate
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time

if __package__ in (None, ""):  # direct script invocation without PYTHONPATH
    _SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core.engine import ImmortalDB
from repro.core.rowcodec import ColumnType
from repro.service.client import ServiceClient
from repro.service.server import ThreadedService

SEED = 17
HOT_KEYS = 32


def _percentile(samples: list[float], p: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
    return ordered[index]


class _ClientResult:
    __slots__ = ("latencies_ms", "acked", "acked_inserts", "rejects",
                 "timeouts", "errors")

    def __init__(self) -> None:
        self.latencies_ms: list[float] = []
        self.acked = 0
        self.acked_inserts = 0
        self.rejects = 0
        self.timeouts = 0
        self.errors = 0


def _client_worker(
    idx: int, port: int, ops: int, *, write_ratio: float,
    pause_on_shed: bool, barrier: threading.Barrier, out: _ClientResult,
) -> None:
    rng = random.Random(SEED + 1000 * idx)
    base = (idx + 1) * 1_000_000
    client = ServiceClient("127.0.0.1", port, timeout_s=60.0)
    barrier.wait()
    try:
        for i in range(ops):
            draw = rng.random()
            is_insert = False
            if draw < write_ratio / 2:
                is_insert = True
                sql = (f"INSERT INTO bench (k, v) "
                       f"VALUES ({base + i}, 'w{idx}-{i}')")
            elif draw < write_ratio:
                key = rng.randrange(HOT_KEYS)
                sql = f"UPDATE bench SET v = 'u{idx}-{i}' WHERE k = {key}"
            else:
                key = rng.randrange(HOT_KEYS)
                sql = f"SELECT v FROM bench WHERE k = {key}"
            start = time.perf_counter()
            try:
                response = client.execute(sql)
            except Exception:
                out.errors += 1
                continue
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            status = response.get("status")
            if status in ("ok", "degraded"):
                out.latencies_ms.append(elapsed_ms)
                out.acked += 1
                out.acked_inserts += is_insert
            elif status == "overloaded":
                out.rejects += 1
                if pause_on_shed:
                    # Honour the server's hint (bounded): the cooperative
                    # client behaviour the retry_after_ms field exists for.
                    time.sleep(
                        min(response.get("retry_after_ms", 10.0), 50.0)
                        / 1000.0
                    )
            elif status == "timeout":
                out.timeouts += 1
            else:
                out.errors += 1
    finally:
        client.close()


def run_phase(
    name: str, *, clients: int, ops_per_client: int, max_inflight: int,
    read_shed_fraction: float, pool_workers: int, write_ratio: float,
    pause_on_shed: bool,
) -> dict:
    db = ImmortalDB(buffer_pages=256, group_commit_window=8)
    table = db.create_table(
        "bench", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", immortal=True,
    )
    with db.transaction() as txn:
        for k in range(HOT_KEYS):
            table.insert(txn, {"k": k, "v": "seed"})
    db.flush_commits()

    results = [_ClientResult() for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)
    with ThreadedService(
        db, port=0, pool_workers=pool_workers, max_inflight=max_inflight,
        read_shed_fraction=read_shed_fraction, seed=SEED,
    ) as svc:
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(idx, svc.port, ops_per_client),
                kwargs=dict(
                    write_ratio=write_ratio, pause_on_shed=pause_on_shed,
                    barrier=barrier, out=results[idx],
                ),
                name=f"bench-client-{idx}",
            )
            for idx in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start

    # The context manager drained: every acked commit must be durable.
    assert db.txn_mgr.unacked_commits == 0, "drain left unforced commits"

    latencies = [ms for r in results for ms in r.latencies_ms]
    acked = sum(r.acked for r in results)
    acked_inserts = sum(r.acked_inserts for r in results)
    rejects = sum(r.rejects for r in results)
    timeouts = sum(r.timeouts for r in results)
    errors = sum(r.errors for r in results)

    # Exactness: an acked INSERT is a row, a shed or errored one is not.
    with db.transaction() as txn:
        rows = table.scan(txn)
    assert len(rows) == HOT_KEYS + acked_inserts, (
        f"{name}: {len(rows)} rows for {acked_inserts} acked inserts "
        f"(+{HOT_KEYS} seed) — shed work half-executed or acks were lost"
    )
    stats = db.stats()
    db.close()

    attempted = clients * ops_per_client
    return {
        "clients": clients,
        "ops_per_client": ops_per_client,
        "attempted": attempted,
        "acked": acked,
        "rejects": rejects,
        "timeouts": timeouts,
        "errors": errors,
        "wall_seconds": round(wall, 6),
        "goodput_per_sec": round(acked / wall, 1) if wall > 0 else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "counters": {
            "service_accepts": stats["service_accepts"],
            "service_rejects": stats["service_rejects"],
            "service_timeouts": stats["service_timeouts"],
            "service_aborted_on_disconnect":
                stats["service_aborted_on_disconnect"],
            "commits": stats["commits"],
            "log_forces": stats["log_forces"],
        },
    }


def run_phases(*, quick: bool) -> dict:
    scale = 1 if quick else 4
    steady = run_phase(
        "steady",
        clients=4,
        ops_per_client=60 * scale,
        max_inflight=64,
        read_shed_fraction=0.75,
        pool_workers=4,
        write_ratio=0.4,
        pause_on_shed=True,
    )
    overload = run_phase(
        "overload",
        clients=12,
        ops_per_client=40 * scale,
        max_inflight=4,          # deliberately tiny: force shedding
        read_shed_fraction=0.5,
        pool_workers=2,
        write_ratio=0.4,
        pause_on_shed=False,     # an inconsiderate herd
    )
    return {"steady": steady, "overload": overload}


def gate_overload(overload: dict, max_p99_ms: float) -> list[str]:
    """The robustness gates: shed hard, stay useful, stay bounded."""
    problems = []
    if overload["acked"] <= 0:
        problems.append("overload: goodput collapsed to zero")
    if overload["rejects"] <= 0:
        problems.append(
            "overload: no rejections — the admission budget never bit, "
            "the phase is not measuring overload"
        )
    if overload["p99_ms"] > max_p99_ms:
        problems.append(
            f"overload: p99 of accepted requests {overload['p99_ms']:.1f} ms "
            f"exceeds the {max_p99_ms:.0f} ms bound — backpressure is not "
            "keeping queues bounded"
        )
    return problems


def compare_against(
    baseline: dict, current: dict, tolerance: float
) -> list[str]:
    problems = []
    pairs = (
        ("steady", "goodput_per_sec"),
        ("overload", "goodput_per_sec"),
    )
    for phase, metric in pairs:
        base = baseline.get("phases", {}).get(phase)
        now = current["phases"].get(phase)
        if base is None or now is None:
            continue
        floor = base[metric] * (1.0 - tolerance)
        if now[metric] < floor:
            problems.append(
                f"{phase}: {now[metric]:.0f} {metric} is below "
                f"{floor:.0f} (baseline {base[metric]:.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_service.py",
        description="Service throughput/overload benchmark with gates.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized workloads")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the JSON here (default: print only)")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="fail if goodput regresses vs this JSON")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional regression (default 0.40; "
                             "socket benchmarks jitter more than in-process "
                             "ones)")
    parser.add_argument("--max-p99-ms", type=float, default=2000.0,
                        help="overload-phase bound on p99 latency of "
                             "accepted requests (default 2000)")
    args = parser.parse_args(argv)

    phases = run_phases(quick=args.quick)
    payload = {"quick": args.quick, "seed": SEED, "phases": phases}

    for name, r in phases.items():
        print(
            f"{name:>8}: {r['goodput_per_sec']:>8.1f} acked ops/s "
            f"({r['acked']}/{r['attempted']} acked, {r['rejects']} shed, "
            f"{r['timeouts']} timeouts, {r['errors']} errors) "
            f"p50 {r['p50_ms']:.1f} ms, p99 {r['p99_ms']:.1f} ms"
        )

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    problems = gate_overload(phases["overload"], args.max_p99_ms)
    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        regressions = compare_against(baseline, payload, args.tolerance)
        if not regressions:
            print(f"no regression vs {args.compare} "
                  f"(tolerance {args.tolerance:.0%})")
        problems.extend(regressions)

    for problem in problems:
        print(f"FAIL: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
