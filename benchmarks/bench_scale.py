"""Scale harness: the engine under sustained eviction/flush/checkpoint pressure.

``bench_throughput.py`` deliberately keeps every workload inside its buffer
pool (and now asserts so); its numbers say nothing about the I/O behaviour
the paper is actually about — current vs. history page residency, write
batching, versioned pages falling out of cache.  This harness is the other
half: a full-size Brinkhoff moving-object load (``repro.workloads.
moving_objects``) drives the data volume to a large multiple of a *bounded*
buffer pool, then a mixed current/as-of/history phase and an as-of scan
phase run against that pressured pool, with per-phase wall-clock ops/sec,
the cost model's ``simulated_ms`` (the repo's canonical I/O metric,
calibrated to the paper's 2005 disk), and raw engine counters.

Two configurations run the identical workload at the identical buffer
budget:

* **naive** — the seed policy: single-list LRU, one WAL force + one page
  write per dirty eviction (``eviction="lru", flush_batch=0``);
* **tuned** — 2Q eviction (history sweeps wash through the probation queue
  instead of flushing the hot current-page working set) plus batched flush
  scheduling (dirty evictions gather a page-id-ordered batch under a single
  WAL force).

The mixed-phase speedup naive/tuned on simulated cost is the headline gate
(``--min-speedup``, default 3.0): both configurations execute the identical
op sequence, so the simulated-cost ratio is the throughput ratio on the
modelled hardware — and it is a pure function of the (seeded,
deterministic) engine counters, so the gate cannot flake.  Wall-clock
numbers are reported alongside; on a dev box the OS page cache absorbs
the random I/O this harness exists to expose, so they are informational.
The JSON this writes (``BENCH_scale.json``) is the committed baseline CI
compares against; ``--compare`` fails the run when any tuned phase's
simulated cost regresses by more than ``--tolerance`` (default 30 %).  Every
pressured workload must report ``buffer_evictions > 0`` and
``disk_writes > 0`` — the harness refuses to publish in-memory numbers as
scale numbers.

Run it:

    PYTHONPATH=src python benchmarks/bench_scale.py --quick          # CI
    PYTHONPATH=src python benchmarks/bench_scale.py                  # full
    PYTHONPATH=src python benchmarks/bench_scale.py --quick \
        --compare BENCH_scale.json                                   # gate
    PYTHONPATH=src python benchmarks/bench_scale.py --quick --ablation
    PYTHONPATH=src python benchmarks/bench_scale.py --quick --depth-sweep
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time
from dataclasses import dataclass

if __package__ in (None, ""):  # direct script invocation without PYTHONPATH
    _SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.core.engine import ImmortalDB
from repro.core.rowcodec import ColumnType
from repro.workloads.moving_objects import MovingObjectWorkload

SEED = 23
GROUP_COMMIT_WINDOW = 8
TICK_BATCH = 8    # moving objects advance in multi-object tick transactions
ROUTE_PAD = 700   # route-trace blob: a handful of objects per 8 KiB page

COUNTER_KEYS = (
    "commits", "log_forces", "log_appends",
    "buffer_hits", "buffer_misses", "buffer_evictions",
    "buffer_dirty_evictions", "evict_scan_skips", "buffer_prefetches",
    "flush_batches", "flush_coalesced_writes",
    "page_flushes", "disk_reads", "disk_writes",
    "disk_sequential_reads", "disk_sequential_writes",
    "stamps", "version_ops",
    "asof_queries", "asof_pages_examined",
    "archive_pages_migrated", "archive_pages_freed",
    "archive_block_reads",
)

# Archive configuration for --archive mode: the horizon is short enough
# that the load phase's history is cold by the time the mixed phase runs,
# so checkpoint-riding migration (auto=True) drains it and frees the pages
# for reuse — shrinking the on-disk footprint the mixed phase's sweeps and
# evictions have to cover.
ARCHIVE_CONFIG = {
    "cold_ms": 2000.0, "pages_per_step": 32,
    "merge_threshold": 8, "auto": True,
}


@dataclass(frozen=True)
class Sizes:
    """Workload scale knobs (one set for --quick, one for the full run)."""

    objects: int          # moving objects = table keys
    hot_objects: int      # the contiguous key range tick updates hit
    load_events: int      # Brinkhoff insert/update transactions
    mixed_ops: int        # mixed-phase operations
    scan_queries: int     # full-table as-of scans in the scan phase
    buffer_pages: int     # the bounded pool both configs share
    checkpoint_every: int  # mixed-phase checkpoint cadence (flush pressure)
    flush_batch: int      # tuned config's write-batch size
    flood_every: int      # mixed-phase ops between current-position sweeps
    read_ahead: int       # tuned config's sequential-miss prefetch depth


# Scale discipline for both size points: the hot leaves must fit the 2Q
# protected queue (capacity - capacity/8) — and version churn bloats hot
# leaves to only ~4 *live* keys per 8 KiB page, so hot_objects/4 is the
# number to size against — while the full current leaf set (hot movers
# plus the stationary fleet) must overflow the pool, so the periodic
# monitoring sweep floods an LRU pool but cannot displace a protected
# hot set.
QUICK = Sizes(
    objects=2600, hot_objects=140, load_events=3000, mixed_ops=3000,
    scan_queries=3, buffer_pages=48, checkpoint_every=250, flush_batch=8,
    flood_every=20, read_ahead=8,
)
FULL = Sizes(
    objects=12_000, hot_objects=1100, load_events=120_000, mixed_ops=30_000,
    scan_queries=8, buffer_pages=384, checkpoint_every=2000, flush_batch=32,
    flood_every=150, read_ahead=32,
)


def _build_db(
    tmpdir: str, *, buffer_pages: int, eviction: str, flush_batch: int,
    read_ahead: int = 0, archive: dict | None = None,
) -> ImmortalDB:
    path = os.path.join(tmpdir, "scale.db")
    kwargs = dict(
        path=path, buffer_pages=buffer_pages, ms_per_commit=5.0,
        group_commit_window=GROUP_COMMIT_WINDOW,
    )
    if archive is not None:
        kwargs["archive"] = dict(archive)
    try:
        return ImmortalDB(
            eviction=eviction, flush_batch=flush_batch,
            read_ahead=read_ahead, **kwargs,
        )
    except TypeError:
        # Pre-eviction-policy engine: only the naive configuration exists.
        kwargs.pop("archive", None)
        return ImmortalDB(**kwargs)


def _make_table(db: ImmortalDB):
    return db.create_table(
        "MovingObjects",
        [
            ("Oid", ColumnType.INT),
            ("LocationX", ColumnType.INT),
            ("LocationY", ColumnType.INT),
            ("Route", ColumnType.TEXT),
        ],
        key="Oid", immortal=True,
    )


def _route(rng: random.Random, x: int, y: int) -> str:
    # Varying value lengths (PAPERS.md benchmark shape): position plus a
    # route-trace blob whose size varies record to record.
    return f"({x},{y})" + "r" * rng.randrange(ROUTE_PAD // 2, ROUTE_PAD)


def _page_count(db: ImmortalDB) -> int:
    pc = getattr(db.disk, "page_count", 0)
    return pc() if callable(pc) else pc


def _flush_commits(db: ImmortalDB) -> None:
    flush = getattr(db, "flush_commits", None)
    if flush is not None:
        flush()
    else:
        db.log.force()


def _measure(db: ImmortalDB, fn) -> dict:
    from repro.bench.costmodel import COST_2005, stats_delta

    before = db.stats()
    start = time.perf_counter()
    ops = fn()
    wall = time.perf_counter() - start
    delta = stats_delta(before, db.stats())
    counters = {k: delta[k] for k in COUNTER_KEYS if k in delta}
    simulated_ms = COST_2005.simulated_ms(delta)
    return {
        "ops": ops,
        "wall_seconds": round(wall, 6),
        "ops_per_sec": round(ops / wall, 1) if wall > 0 else float("inf"),
        "simulated_ms": round(simulated_ms, 3),
        # Both clocks, per phase: wall ops/sec says what this machine did
        # (page cache included); simulated ops/sec says what the modelled
        # 2005 disk would have done.  The two can rank configurations in
        # opposite orders — see EXPERIMENTS.md, "Why simulated cost is the
        # gated metric".
        "sim_ops_per_sec": round(ops / (simulated_ms / 1000.0), 1)
        if simulated_ms > 0 else float("inf"),
        "counters": counters,
    }


# -- phases -------------------------------------------------------------------


def _run_load(db: ImmortalDB, table, sizes: Sizes, marks: list) -> int:
    """Replay the Brinkhoff stream; collects as-of time marks on the way.

    The ``hot_objects`` movers replay the Brinkhoff network trace; then a
    stationary fleet (the rest of the key range) arrives and parks.  The
    paper's own workload shape — "*once an object reaches its destination,
    it stops sending update transactions*" — so these rows are inserted
    once, in key order, and never touched by the mixed phase's updates
    (only by its sweeps and as-of probes).  Inserting them last in
    ascending key order grows the B-tree purely at its right edge, so
    their leaves get (mostly) consecutive page ids: the layout a real
    bulk load produces, and the one sequential read-ahead rewards.
    """
    rng = random.Random(SEED)
    movers = min(sizes.hot_objects, sizes.objects)
    workload = MovingObjectWorkload(objects=movers, seed=SEED)
    mark_every = max(1, sizes.load_events // 16)
    for i, event in enumerate(workload.events(max_events=sizes.load_events)):
        if i % mark_every == 0:
            marks.append(db.now())
        route = _route(rng, event.x, event.y)
        with db.transaction() as txn:
            if event.kind == "insert":
                table.insert(txn, {
                    "Oid": event.oid, "LocationX": event.x,
                    "LocationY": event.y, "Route": route,
                })
            else:
                table.update(txn, event.oid, {
                    "LocationX": event.x, "LocationY": event.y,
                    "Route": route,
                })
        if i % sizes.checkpoint_every == sizes.checkpoint_every - 1:
            db.checkpoint(flush=True)
    marks.append(db.now())
    parked = 0
    for oid in range(movers, sizes.objects):
        x, y = rng.randrange(10_000), rng.randrange(10_000)
        with db.transaction() as txn:
            table.insert(txn, {
                "Oid": oid, "LocationX": x, "LocationY": y,
                "Route": _route(rng, x, y),
            })
        parked += 1
    _flush_commits(db)
    # Leave the pool clean: both configurations enter the mixed phase with
    # no dirty debt from the load.
    db.checkpoint(flush=True)
    marks.append(db.now())
    return sizes.load_events + parked


def _scan_iter(table, ts):
    it = getattr(table, "scan_as_of_iter", None)
    return it(ts) if it is not None else iter(table.scan_as_of(ts))


def _run_mixed(db: ImmortalDB, table, sizes: Sizes, marks: list) -> int:
    """Hot tick updates against periodic current-position monitoring sweeps.

    This mix is the paper's setting and 2Q's design point at once.  A
    *hot fleet* — the first ``hot_objects`` of the key range, so its
    leaves are a contiguous run that fits the protected queue — reports
    continuously in multi-object tick transactions, while a monitoring
    query periodically sweeps every current position (``flood_every``),
    and as-of point probes plus history walks ride along as historical
    traffic.  Under LRU every sweep floods the pool and evicts the whole
    hot set: each dirty hot leaf goes out as a single random write-back,
    and the next tick reads every hot leaf back one random I/O at a
    time.  Under 2Q the sweep's pages live and die in the probation
    queue while the hot leaves stay protected in Am absorbing update
    after update; the sweep's misses over the cold half of the key range
    run in page-id order, so read-ahead turns them into sequential
    transfers; and the hot write-backs happen at checkpoints, where the
    batched flush scheduler emits them as page-id-ordered (mostly
    sequential) runs under one WAL force.
    """
    rng = random.Random(SEED + 1)
    ops = sizes.mixed_ops
    objects = sizes.objects
    hot = min(sizes.hot_objects, objects)
    done = 0
    next_checkpoint = sizes.checkpoint_every
    next_flood = sizes.flood_every
    while done < ops:
        draw = rng.random()
        if draw < 0.96:
            tick = min(TICK_BATCH, ops - done)
            with db.transaction() as txn:
                for _ in range(tick):
                    oid = rng.randrange(hot)
                    x, y = rng.randrange(10_000), rng.randrange(10_000)
                    table.update(txn, oid, {
                        "LocationX": x, "LocationY": y,
                        "Route": _route(rng, x, y),
                    })
            done += tick
        elif draw < 0.985:
            ts = marks[rng.randrange(len(marks))]
            table.read_as_of(ts, rng.randrange(objects))
            done += 1
        else:
            table.history(rng.randrange(objects))
            done += 1
        if done >= next_flood:
            # The monitoring sweep: where is every object right now?
            for _ in _scan_iter(table, db.now()):
                pass
            next_flood += sizes.flood_every
            done += 1
        if done >= next_checkpoint:
            db.checkpoint(flush=True)
            next_checkpoint += sizes.checkpoint_every
    _flush_commits(db)
    return ops


def _run_scans(db: ImmortalDB, table, sizes: Sizes, marks: list) -> int:
    rng = random.Random(SEED + 2)
    total = 0
    for _ in range(sizes.scan_queries):
        ts = marks[rng.randrange(len(marks))]
        rows = table.scan_as_of(ts)
        total += len(rows)
    assert total > 0, "as-of scans found nothing at known marks"
    return sizes.scan_queries


# -- configurations -----------------------------------------------------------


def run_config(
    *, eviction: str, flush_batch: int, sizes: Sizes, read_ahead: int = 0,
    with_scan_reference: bool = False, archive: dict | None = None,
) -> dict:
    """The full phase suite under one buffer configuration."""
    out: dict = {
        "eviction": eviction, "flush_batch": flush_batch,
        "read_ahead": read_ahead, "archive": archive is not None,
    }
    marks: list = []
    with tempfile.TemporaryDirectory(prefix="bench_scale_") as tmp:
        db = _build_db(
            tmp, buffer_pages=sizes.buffer_pages,
            eviction=eviction, flush_batch=flush_batch,
            read_ahead=read_ahead, archive=archive,
        )
        table = _make_table(db)
        out["load"] = _measure(
            db, lambda: _run_load(db, table, sizes, marks)
        )
        out["mixed"] = _measure(
            db, lambda: _run_mixed(db, table, sizes, marks)
        )
        out["scan"] = _measure(
            db, lambda: _run_scans(db, table, sizes, marks)
        )
        data_pages = _page_count(db)
        out["data_pages"] = data_pages
        if archive is not None:
            stats = db.stats()
            out["archive_stats"] = {
                "pages_migrated": stats["archive_pages_migrated"],
                "pages_freed": stats["archive_pages_freed"],
                "free_reuses": getattr(db.disk.stats, "free_reuses", 0),
                "runs": stats["archive_runs"],
                "blocks": stats["archive_blocks"],
                "block_reads": stats["archive_block_reads"],
                "bytes_raw": stats["archive_bytes_raw"],
                "bytes_stored": stats["archive_bytes_stored"],
            }
        if with_scan_reference:
            # The in-memory reference for the as-of latency ratio: lift the
            # cap far above the data volume, warm with one pass, re-measure.
            # Same database, same marks, same code path — the only change is
            # that no page falls out of cache.
            db.buffer.capacity = (data_pages or 100_000) + 1024
            _run_scans(db, table, sizes, marks)   # warm
            out["scan_inmemory"] = _measure(
                db, lambda: _run_scans(db, table, sizes, marks)
            )
        db.close()
    return out


def _phase_ms_per_query(phase: dict, queries: int) -> float:
    return phase["wall_seconds"] * 1000.0 / max(1, queries)


def run_scale(*, quick: bool, tuned_only: bool = False) -> dict:
    sizes = QUICK if quick else FULL
    payload: dict = {
        "quick": quick,
        "seed": SEED,
        "buffer_pages": sizes.buffer_pages,
        "objects": sizes.objects,
        "hot_objects": sizes.hot_objects,
        "load_events": sizes.load_events,
        "mixed_ops": sizes.mixed_ops,
        "group_commit_window": GROUP_COMMIT_WINDOW,
    }
    if not tuned_only:
        payload["naive"] = run_config(
            eviction="lru", flush_batch=0, sizes=sizes,
        )
    payload["tuned"] = run_config(
        eviction="2q", flush_batch=sizes.flush_batch, sizes=sizes,
        read_ahead=sizes.read_ahead, with_scan_reference=True,
    )
    if not tuned_only:
        # Speedup on the deterministic cost model (the repo's canonical I/O
        # metric, calibrated to the paper's 2005 disk): both configurations
        # execute the identical op sequence, so the ratio of simulated cost
        # is the ratio of mixed throughput on the modelled hardware.  Wall
        # numbers are reported alongside but not gated: on a dev box the
        # page cache absorbs the random I/O this harness exists to expose.
        payload["mixed_speedup"] = round(
            payload["naive"]["mixed"]["simulated_ms"]
            / payload["tuned"]["mixed"]["simulated_ms"], 3,
        )
        payload["mixed_wall_speedup"] = round(
            payload["tuned"]["mixed"]["ops_per_sec"]
            / payload["naive"]["mixed"]["ops_per_sec"], 3,
        )
    # Per-phase speedups on both clocks: the divergence between the two is
    # the point (wall is page-cache-bound on a dev box, simulated is the
    # modelled 2005 disk) — see EXPERIMENTS.md.
    if not tuned_only:
        payload["phase_speedups"] = {
            phase: {
                "simulated": round(
                    payload["naive"][phase]["simulated_ms"]
                    / max(1e-9, payload["tuned"][phase]["simulated_ms"]), 3,
                ),
                "wall": round(
                    payload["naive"][phase]["wall_seconds"]
                    / max(1e-9, payload["tuned"][phase]["wall_seconds"]), 3,
                ),
            }
            for phase in ("load", "mixed", "scan")
        }
    tuned = payload["tuned"]
    pressured = _phase_ms_per_query(tuned["scan"], sizes.scan_queries)
    inmemory = _phase_ms_per_query(tuned["scan_inmemory"], sizes.scan_queries)
    tuned_pages = tuned["data_pages"]
    payload["asof_scan"] = {
        "pressured_ms_per_query": round(pressured, 3),
        "inmemory_ms_per_query": round(inmemory, 3),
        "latency_ratio": round(pressured / inmemory, 3) if inmemory else None,
        "data_pages": tuned_pages,
        "data_to_buffer_ratio": round(tuned_pages / sizes.buffer_pages, 2)
        if tuned_pages else None,
    }
    return payload


def check_pressure(payload: dict) -> list[str]:
    """Every scale workload must actually have been under pressure.

    Evictions are required in every phase; disk writes are required per
    workload (the scan phase is read-only by design — its writes are the
    dirty pages earlier phases left behind, which may legitimately be
    zero right after a checkpoint).
    """
    problems = []
    for config in ("naive", "tuned"):
        if config not in payload:
            continue
        writes = 0
        for phase in ("load", "mixed", "scan"):
            counters = payload[config][phase]["counters"]
            writes += counters.get("disk_writes", 0)
            if counters.get("buffer_evictions", 0) <= 0:
                problems.append(
                    f"{config}/{phase}: buffer_evictions == 0 — the "
                    "workload did not generate eviction pressure; scale "
                    "numbers would be in-memory numbers"
                )
        if writes <= 0:
            problems.append(
                f"{config}: disk_writes == 0 across all phases — nothing "
                "was ever written back under pressure"
            )
    return problems


def compare_against(baseline: dict, current: dict, tolerance: float) -> list[str]:
    """Regressions beyond ``tolerance`` in the tuned configuration.

    Gated on ``simulated_ms`` — a pure function of the engine's counters,
    so it is deterministic across machines and CI runners; wall-clock
    ops/sec would need a far looser gate to absorb runner noise.
    """
    problems = []
    if baseline.get("quick") != current.get("quick"):
        return [
            "baseline and current run disagree on --quick mode; "
            "absolute simulated_ms is only comparable within one mode"
        ]
    base_tuned = baseline.get("tuned", {})
    now_tuned = current.get("tuned", {})
    for phase in ("load", "mixed", "scan"):
        base = base_tuned.get(phase)
        now = now_tuned.get(phase)
        if base is None:
            continue
        if now is None:
            problems.append(f"tuned/{phase}: missing from current run")
            continue
        ceiling = base["simulated_ms"] * (1.0 + tolerance)
        if now["simulated_ms"] > ceiling:
            problems.append(
                f"tuned/{phase}: {now['simulated_ms']:.1f} simulated ms is "
                f"above {ceiling:.1f} (baseline {base['simulated_ms']:.1f} "
                f"+ {tolerance:.0%} tolerance)"
            )
    return problems


def run_archive_comparison(*, quick: bool) -> dict:
    """Tuned vs tuned-plus-archive on the identical workload and budget.

    What archiving buys under eviction pressure: the load phase's history
    pages go cold, checkpoint-riding migration drains them into the
    delta-compressed archive and *frees* the TSB-tree pages, so the mixed
    phase works against a smaller on-disk footprint — fewer distinct pages
    to sweep, fewer evictions — and new history growth reuses the freed
    page ids instead of growing the file.
    """
    sizes = QUICK if quick else FULL
    payload: dict = {
        "quick": quick,
        "seed": SEED,
        "buffer_pages": sizes.buffer_pages,
        "archive_config": dict(ARCHIVE_CONFIG),
    }
    payload["tuned"] = run_config(
        eviction="2q", flush_batch=sizes.flush_batch, sizes=sizes,
        read_ahead=sizes.read_ahead,
    )
    payload["tuned_archive"] = run_config(
        eviction="2q", flush_batch=sizes.flush_batch, sizes=sizes,
        read_ahead=sizes.read_ahead, archive=ARCHIVE_CONFIG,
    )
    base_ev = payload["tuned"]["mixed"]["counters"]["buffer_evictions"]
    arch_ev = payload["tuned_archive"]["mixed"]["counters"]["buffer_evictions"]
    payload["mixed_evictions"] = {
        "tuned": base_ev,
        "tuned_archive": arch_ev,
        "reduction_pct": round(100.0 * (base_ev - arch_ev) / base_ev, 1)
        if base_ev else None,
    }
    payload["data_pages"] = {
        "tuned": payload["tuned"]["data_pages"],
        "tuned_archive": payload["tuned_archive"]["data_pages"],
    }
    return payload


def check_archive_comparison(payload: dict) -> list[str]:
    problems = []
    stats = payload["tuned_archive"].get("archive_stats") or {}
    if stats.get("pages_freed", 0) <= 0:
        problems.append(
            "archive run freed no pages — migration never fired; raise "
            "cold_ms pressure or checkpoint cadence"
        )
    ev = payload["mixed_evictions"]
    if ev["tuned_archive"] >= ev["tuned"]:
        problems.append(
            f"mixed-phase buffer_evictions did not drop with archiving on "
            f"({ev['tuned_archive']} vs {ev['tuned']})"
        )
    return problems


# -- ablation / sweep modes ---------------------------------------------------


def run_ablation(*, quick: bool) -> list[dict]:
    """Eviction policy x I/O scheduling, identical workload and budget.

    The scheduling axis toggles flush batching and read-ahead together —
    they are the write- and read-side halves of the same idea (turn
    scattered single-page I/O into id-ordered runs), and the tuned
    configuration ships them as a pair.
    """
    sizes = QUICK if quick else FULL
    rows = []
    for eviction in ("lru", "2q", "clock"):
        for flush_batch, read_ahead in (
            (0, 0), (sizes.flush_batch, sizes.read_ahead),
        ):
            result = run_config(
                eviction=eviction, flush_batch=flush_batch, sizes=sizes,
                read_ahead=read_ahead,
            )
            mixed = result["mixed"]
            rows.append({
                "eviction": eviction,
                "flush_batch": flush_batch,
                "read_ahead": read_ahead,
                "mixed_simulated_ms": mixed["simulated_ms"],
                "mixed_ops_per_sec": mixed["ops_per_sec"],
                "buffer_misses": mixed["counters"]["buffer_misses"],
                "dirty_evictions":
                    mixed["counters"].get("buffer_dirty_evictions", 0),
                "disk_writes": mixed["counters"]["disk_writes"],
                "sequential_writes":
                    mixed["counters"].get("disk_sequential_writes", 0),
                "disk_reads": mixed["counters"]["disk_reads"],
                "sequential_reads":
                    mixed["counters"].get("disk_sequential_reads", 0),
                "prefetches": mixed["counters"].get("buffer_prefetches", 0),
                "log_forces": mixed["counters"]["log_forces"],
                "flush_batches": mixed["counters"].get("flush_batches", 0),
                "coalesced_writes":
                    mixed["counters"].get("flush_coalesced_writes", 0),
            })
    return rows


def run_depth_sweep(*, quick: bool) -> list[dict]:
    """Throughput and as-of latency as history depth grows past the pool.

    Fixed key count, fixed buffer budget; each step doubles the number of
    versions per key, so the *history* volume (and the data:buffer ratio)
    doubles while the current working set stays constant.  The paper's
    claim is that the mixed numbers stay roughly flat — history lives on
    time-split pages the current path never touches.
    """
    sizes = QUICK if quick else FULL
    keys = max(64, sizes.objects // 4)
    rows = []
    for depth in (2, 4, 8, 16):
        marks: list = []
        with tempfile.TemporaryDirectory(prefix="bench_depth_") as tmp:
            db = _build_db(
                tmp, buffer_pages=sizes.buffer_pages,
                eviction="2q", flush_batch=sizes.flush_batch,
                read_ahead=sizes.read_ahead,
            )
            table = _make_table(db)
            rng = random.Random(SEED + 3)

            def load(depth=depth, rng=rng) -> int:
                for v in range(depth):
                    marks.append(db.now())
                    for k in range(keys):
                        x, y = rng.randrange(10_000), rng.randrange(10_000)
                        with db.transaction() as txn:
                            if v == 0:
                                table.insert(txn, {
                                    "Oid": k, "LocationX": x,
                                    "LocationY": y, "Route": _route(rng, x, y),
                                })
                            else:
                                table.update(txn, k, {
                                    "LocationX": x, "LocationY": y,
                                    "Route": _route(rng, x, y),
                                })
                    _flush_commits(db)
                    db.advance_time(500.0)
                marks.append(db.now())
                return depth * keys

            load()
            depth_sizes = Sizes(
                objects=keys, hot_objects=keys, load_events=0,
                mixed_ops=max(200, sizes.mixed_ops // 8),
                scan_queries=max(2, sizes.scan_queries // 2),
                buffer_pages=sizes.buffer_pages,
                checkpoint_every=sizes.checkpoint_every,
                flush_batch=sizes.flush_batch,
                flood_every=sizes.flood_every,
                read_ahead=sizes.read_ahead,
            )
            mixed = _measure(
                db, lambda: _run_mixed(db, table, depth_sizes, marks)
            )
            scan = _measure(
                db, lambda: _run_scans(db, table, depth_sizes, marks)
            )
            data_pages = _page_count(db)
            rows.append({
                "depth": depth,
                "data_pages": data_pages,
                "data_to_buffer_ratio":
                    round(data_pages / sizes.buffer_pages, 2),
                "mixed_ops_per_sec": mixed["ops_per_sec"],
                "scan_ms_per_query": round(_phase_ms_per_query(
                    scan, depth_sizes.scan_queries), 3),
            })
            db.close()
    return rows


# -- CLI ----------------------------------------------------------------------


def _print_phase(config: str, name: str, r: dict) -> None:
    c = r["counters"]
    print(f"{config:>5}/{name:<5} {r['simulated_ms']:>10.0f} sim-ms "
          f"{r['wall_seconds']:>7.2f} wall-s "
          f"{r['ops_per_sec']:>9.1f} ops/s wall "
          f"({r['ops']} ops, "
          f"evictions {c.get('buffer_evictions', '?')}, "
          f"dirty {c.get('buffer_dirty_evictions', '?')}, "
          f"reads {c.get('disk_reads', '?')}, "
          f"writes {c.get('disk_writes', '?')}, "
          f"seq-writes {c.get('disk_sequential_writes', '?')}, "
          f"forces {c.get('log_forces', '?')})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_scale.py",
        description="Eviction-pressure benchmark with naive-vs-tuned gating.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads (the committed baseline)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the JSON here (default: print only)")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="fail if tuned simulated cost regresses vs "
                             "this JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail if tuned mixed simulated speedup vs "
                             "naive is below this (default 3.0)")
    parser.add_argument("--ablation", action="store_true",
                        help="eviction x flush-batch ablation table instead "
                             "of the gated naive-vs-tuned run")
    parser.add_argument("--depth-sweep", action="store_true",
                        help="history-depth sweep table instead of the "
                             "gated naive-vs-tuned run")
    parser.add_argument("--archive", action="store_true",
                        help="tuned vs tuned+cold-history-archive comparison "
                             "instead of the gated naive-vs-tuned run")
    args = parser.parse_args(argv)

    if args.archive:
        payload = run_archive_comparison(quick=args.quick)
        for config in ("tuned", "tuned_archive"):
            for phase in ("load", "mixed", "scan"):
                _print_phase(config, phase, payload[config][phase])
        stats = payload["tuned_archive"].get("archive_stats") or {}
        ev = payload["mixed_evictions"]
        pages = payload["data_pages"]
        ratio = (
            round(stats["bytes_raw"] / stats["bytes_stored"], 2)
            if stats.get("bytes_stored") else None
        )
        print(f"archive: migrated {stats.get('pages_migrated', 0)} pages, "
              f"freed {stats.get('pages_freed', 0)}, "
              f"reused {stats.get('free_reuses', 0)}, "
              f"{stats.get('runs', 0)} runs / {stats.get('blocks', 0)} "
              f"blocks, compression {ratio}x")
        print(f"data pages: {pages['tuned']} tuned vs "
              f"{pages['tuned_archive']} with archive")
        print(f"mixed evictions: {ev['tuned']} tuned vs "
              f"{ev['tuned_archive']} with archive "
              f"({ev['reduction_pct']}% reduction)")
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.output}")
        failed = False
        for problem in check_archive_comparison(payload):
            print(f"FAIL {problem}")
            failed = True
        return 1 if failed else 0

    if args.ablation:
        rows = run_ablation(quick=args.quick)
        print(f"{'eviction':>8} {'batch':>5} {'ra':>4} {'sim-ms':>9} "
              f"{'ops/s':>9} {'misses':>8} {'dirty_ev':>8} {'writes':>7} "
              f"{'seq-w':>6} {'seq-r':>6} {'batches':>7} {'coal':>5}")
        for r in rows:
            print(f"{r['eviction']:>8} {r['flush_batch']:>5} "
                  f"{r['read_ahead']:>4} "
                  f"{r['mixed_simulated_ms']:>9.0f} "
                  f"{r['mixed_ops_per_sec']:>9.1f} {r['buffer_misses']:>8} "
                  f"{r['dirty_evictions']:>8} {r['disk_writes']:>7} "
                  f"{r['sequential_writes']:>6} {r['sequential_reads']:>6} "
                  f"{r['flush_batches']:>7} {r['coalesced_writes']:>5}")
        if args.output:
            with open(args.output, "w") as fh:
                json.dump({"ablation": rows}, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.output}")
        return 0

    if args.depth_sweep:
        rows = run_depth_sweep(quick=args.quick)
        print(f"{'depth':>5} {'pages':>7} {'data:buf':>8} "
              f"{'mixed ops/s':>11} {'scan ms/q':>9}")
        for r in rows:
            print(f"{r['depth']:>5} {r['data_pages']:>7} "
                  f"{r['data_to_buffer_ratio']:>8.1f} "
                  f"{r['mixed_ops_per_sec']:>11.1f} "
                  f"{r['scan_ms_per_query']:>9.2f}")
        if args.output:
            with open(args.output, "w") as fh:
                json.dump({"depth_sweep": rows}, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.output}")
        return 0

    payload = run_scale(quick=args.quick)

    for config in ("naive", "tuned"):
        for phase in ("load", "mixed", "scan"):
            _print_phase(config, phase, payload[config][phase])
    asof = payload["asof_scan"]
    print(f"mixed speedup: {payload['mixed_speedup']:.2f}x simulated "
          f"(gate: >= {args.min_speedup:.2f}x; "
          f"wall {payload['mixed_wall_speedup']:.2f}x)")
    print(f"as-of scan: {asof['pressured_ms_per_query']:.1f} ms/query "
          f"pressured vs {asof['inmemory_ms_per_query']:.1f} in-memory "
          f"(ratio {asof['latency_ratio']}, data "
          f"{asof['data_to_buffer_ratio']}x the pool)")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    failed = False
    for problem in check_pressure(payload):
        print(f"FAIL {problem}")
        failed = True

    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        problems = compare_against(baseline, payload, args.tolerance)
        for problem in problems:
            print(f"REGRESSION {problem}")
            failed = True
        if not problems:
            print(f"no regression vs {args.compare} "
                  f"(tolerance {args.tolerance:.0%})")

    if payload["mixed_speedup"] < args.min_speedup:
        print(f"FAIL: tuned mixed simulated speedup "
              f"{payload['mixed_speedup']:.2f}x is below the "
              f"{args.min_speedup:.2f}x gate")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
