"""Ablation 4 — PTT garbage collection on vs off (paper Section 2.2).

"If we do not remove unneeded entries from it, the PTT eventually becomes
very large.  Not only does this needlessly consume disk storage, but it can
increase the cost for a TID lookup to find its timestamp."

We run a long update stream twice: with periodic checkpoints driving the
checkpoint-gated garbage collector (Immortal DB), and without (Postgres-
style unbounded PTT).  Compared: PTT entry count, page footprint, tree
height, and cold-cache lookup cost.
"""

from __future__ import annotations

from conftest import bench_scale

from repro.bench import (
    format_table,
    fresh_moving_objects_db,
    measure,
    save_results,
)
from repro.workloads.moving_objects import MovingObjectWorkload
from repro.bench import apply_event


def _run(gc: bool, transactions: int, checkpoint_every: int) -> dict:
    db, table = fresh_moving_objects_db(immortal=True)
    workload = MovingObjectWorkload(objects=100, seed=5)
    for i, event in enumerate(workload.events(max_events=transactions)):
        apply_event(db, table, event)
        if gc and (i + 1) % checkpoint_every == 0:
            # Touch records so pending stamps resolve, then checkpoint:
            # flushing advances the redo scan start point past the
            # stamping-done LSNs, making entries collectable.
            db.checkpoint(flush=True)
    if gc:
        db.checkpoint(flush=True)
        db.checkpoint(flush=True)

    # Cold-cache lookup probe: drop the buffer pool, then resolve a spread
    # of TIDs through the PTT.  (Pick the probe TIDs *before* discarding
    # the cache — enumerating entries would warm it back up.)
    all_tids = [tid for tid, _ in db.ptt.entries()]
    probe_tids = all_tids[:: max(1, len(all_tids) // 20)] or [1]
    db.buffer.flush_all()
    db.buffer.discard_all()
    db.tsmgr.vtt.clear()

    def probe() -> None:
        for tid in probe_tids:
            db.ptt.lookup(tid)

    m = measure(db, probe)
    return {
        "gc": "on" if gc else "off",
        "ptt_entries": len(db.ptt),
        "ptt_pages": len(db.ptt.page_ids()),
        "ptt_height": db.ptt.height(),
        "gc_deleted": db.tsmgr.stats.ptt_deletes,
        "lookup_sim_ms": m.simulated_ms / max(1, len(probe_tids)),
        "lookup_reads": m.delta["disk_reads"],
    }


def test_abl4_ptt_garbage_collection(benchmark, emit):
    n = max(2000, int(20_000 * bench_scale()))
    without_gc = _run(gc=False, transactions=n, checkpoint_every=n)
    with_gc = _run(gc=True, transactions=n, checkpoint_every=max(200, n // 40))

    emit(
        format_table(
            "Abl 4: PTT growth with garbage collection on vs off",
            ["GC", "PTT entries", "PTT pages", "height",
             "entries deleted", "cold lookup ms", "probe disk reads"],
            [
                [r["gc"], r["ptt_entries"], r["ptt_pages"], r["ptt_height"],
                 r["gc_deleted"], r["lookup_sim_ms"], r["lookup_reads"]]
                for r in (without_gc, with_gc)
            ],
            note=f"{n} update transactions; GC is gated on the redo scan "
                 "start point passing each transaction's stamping-done LSN",
        )
    )
    save_results(
        "abl4_ptt_gc", {"without_gc": without_gc, "with_gc": with_gc}
    )

    # Without GC the PTT holds ~every transaction; with GC it stays small.
    assert without_gc["ptt_entries"] >= n * 0.95
    assert with_gc["ptt_entries"] < without_gc["ptt_entries"] * 0.25
    assert with_gc["ptt_pages"] < without_gc["ptt_pages"]
    assert with_gc["gc_deleted"] > 0
    # Cold lookups touch fewer pages in the compact table.
    assert with_gc["lookup_reads"] <= without_gc["lookup_reads"]

    benchmark.pedantic(
        lambda: _run(gc=True, transactions=500, checkpoint_every=100),
        rounds=1, iterations=1,
    )
