"""Figure 5 — Transaction overhead of Immortal DB vs a conventional table.

Paper setup (Section 5.1): the moving-objects workload issues up to 32,000
single-record transactions (500 inserts, the rest updates) against (a) an
immortal table and (b) a conventional table.  Reported findings we check:

* conventional ≈ 9.6 ms per transaction on the paper's hardware;
* Immortal DB adds ≈ 1.1 ms (≈ 11 %): one PTT update per transaction, the
  timestamp-table consultation, and stamping the prior version;
* the lowest-overhead case — all 32 K records in ONE transaction — is
  "indistinguishable from non-timestamped updates" (one PTT update total).
"""

from __future__ import annotations

from conftest import bench_scale

from repro.bench import (
    apply_event,
    format_table,
    fresh_moving_objects_db,
    measure,
    save_results,
)
from repro.workloads.moving_objects import MovingObjectWorkload

TXN_COUNTS_K = (1, 2, 4, 8, 16, 32)


def _run_series(immortal: bool, transactions: int) -> float:
    db, table = fresh_moving_objects_db(immortal=immortal)
    workload = MovingObjectWorkload(objects=500, seed=7)
    events = list(workload.events(max_events=transactions))
    m = measure(db, lambda: [apply_event(db, table, e) for e in events])
    return m.simulated_ms


def _run_batch(immortal: bool, records: int) -> float:
    """The lowest-overhead case: every record in one transaction."""
    db, table = fresh_moving_objects_db(immortal=immortal)
    workload = MovingObjectWorkload(objects=500, seed=7)
    events = list(workload.events(max_events=records))

    def body() -> None:
        with db.transaction() as txn:
            for event in events:
                if event.kind == "insert":
                    table.insert(txn, {
                        "Oid": event.oid,
                        "LocationX": event.x,
                        "LocationY": event.y,
                    })
                else:
                    table.update(txn, event.oid, {
                        "LocationX": event.x,
                        "LocationY": event.y,
                    })

    return measure(db, body).simulated_ms


def test_fig5_transaction_overhead(benchmark, emit):
    scale = bench_scale()
    rows = []
    payload = []
    for count_k in TXN_COUNTS_K:
        n = max(500, int(count_k * 1000 * scale))
        conventional_ms = _run_series(immortal=False, transactions=n)
        immortal_ms = _run_series(immortal=True, transactions=n)
        overhead = (immortal_ms - conventional_ms) / conventional_ms * 100
        rows.append(
            (
                f"{count_k}K",
                conventional_ms / 1000.0,
                immortal_ms / 1000.0,
                (immortal_ms - conventional_ms) / n,
                f"{overhead:.1f}%",
            )
        )
        payload.append(
            {
                "transactions": n,
                "conventional_sim_ms": conventional_ms,
                "immortal_sim_ms": immortal_ms,
                "overhead_pct": overhead,
            }
        )

    # Headline numbers at the largest point (the paper quotes 32K).
    largest = payload[-1]
    per_txn_conv = largest["conventional_sim_ms"] / largest["transactions"]
    per_txn_add = (
        largest["immortal_sim_ms"] - largest["conventional_sim_ms"]
    ) / largest["transactions"]

    batch_records = max(500, int(2000 * scale))
    batch_conv = _run_batch(immortal=False, records=batch_records)
    batch_imm = _run_batch(immortal=True, records=batch_records)
    batch_overhead = (batch_imm - batch_conv) / batch_conv * 100

    emit(
        format_table(
            "Figure 5: transaction overhead (simulated seconds)",
            ["txns", "conventional s", "immortal s", "added ms/txn", "overhead"],
            rows,
            note=(
                f"paper: 9.6 ms/txn conventional, +1.1 ms (~11%) immortal | "
                f"measured: {per_txn_conv:.2f} ms/txn, +{per_txn_add:.2f} ms | "
                f"single-batch case overhead: {batch_overhead:.2f}% "
                f"(paper: indistinguishable)"
            ),
        )
    )
    save_results(
        "fig5_transaction_overhead",
        {
            "series": payload,
            "per_txn_conventional_ms": per_txn_conv,
            "per_txn_added_ms": per_txn_add,
            "batch_overhead_pct": batch_overhead,
        },
    )

    # Shape assertions: the paper's findings must hold.
    assert 7.0 <= per_txn_conv <= 13.0          # ~9.6 ms ballpark
    assert 0.4 <= per_txn_add <= 2.5            # ~1.1 ms ballpark
    assert largest["overhead_pct"] < 25.0       # "quite low" overhead
    assert batch_overhead < 2.0                 # batch case ~indistinguishable

    # Wall-clock regression probe: 500 single-record update transactions.
    def probe() -> None:
        _run_series(immortal=True, transactions=500)

    benchmark.pedantic(probe, rounds=1, iterations=1)
