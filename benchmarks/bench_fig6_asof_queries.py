"""Figure 6 — AS OF query latency vs depth in history.

Paper setup (Section 5.2): 36,000 transactions at four insert/update
mixes — 500 records × 72 updates, 1K × 36, 2K × 18, 4K × 9 — then AS OF
queries at times covering 0–100 % of the recorded history.

Findings to reproduce:

* recent as-of times favour the *fewer-inserts* configurations (fewer
  records to retrieve) — visible in the full-scan table;
* "as we go back in history, the performance advantage reverses because
  those records are updated more frequently.  The more updates, the lower
  the performance, because the version chains are longer."  For a full
  scan the *total* version volume walked is the same in every config
  (36 K versions each), so the reversal shows up (a) per retrieved record
  and (b) absolutely on selective queries — we run the paper's own
  Section 4.2 example, ``WHERE Oid < 10``, where the page chains walked
  are exactly as long as the per-record update count makes them;
* queries over older data cost much more than recent ones, because the
  page chain is walked sequentially from the current page (the TSB-tree
  removes this; see the Abl-2 bench).
"""

from __future__ import annotations

from conftest import bench_scale

from repro.bench import (
    format_table,
    fresh_moving_objects_db,
    measure,
    save_results,
)
from repro.clock import Timestamp

CONFIGS = ((500, 72), (1000, 36), (2000, 18), (4000, 9))
HISTORY_PERCENTS = (10, 25, 50, 75, 90, 100)
MS_BETWEEN_TXNS = 30.0


def _build(inserts: int, updates_per_record: int, scale: float):
    """Run the insert+update stream; return (db, table, marks by percent)."""
    inserts = max(64, int(inserts * scale))
    db, table = fresh_moving_objects_db(immortal=True, buffer_pages=8192)
    with db.transaction() as txn:
        for oid in range(inserts):
            table.insert(txn, {"Oid": oid, "LocationX": 0, "LocationY": 0})
    total_updates = inserts * updates_per_record
    marks: dict[int, Timestamp] = {0: db.now()}
    next_pct = 1
    for i in range(total_updates):
        db.clock.advance_ms(MS_BETWEEN_TXNS)
        with db.transaction() as txn:
            table.update(
                txn, i % inserts, {"LocationX": i, "LocationY": i}
            )
        while next_pct <= 100 and (i + 1) >= total_updates * next_pct / 100:
            marks[next_pct] = db.now()
            next_pct += 1
    return db, table, marks


def _selective_query(db, table, ts) -> list[dict]:
    """The paper's example: SELECT * WHERE Oid < 10 AS OF ts (Section 4.2)."""
    rows = []
    for oid in range(10):
        row = table.read_as_of(ts, oid)
        if row is not None:
            rows.append(row)
    return rows


def test_fig6_asof_latency(benchmark, emit):
    scale = bench_scale()
    scans: dict[tuple[int, int], dict[int, float]] = {}
    selective: dict[tuple[int, int], dict[int, float]] = {}
    record_counts: dict[tuple[int, int], int] = {}
    for inserts, updates in CONFIGS:
        db, table, marks = _build(inserts, updates, scale)
        record_counts[(inserts, updates)] = max(64, int(inserts * scale))
        scan_ms: dict[int, float] = {}
        point_ms: dict[int, float] = {}
        for pct in HISTORY_PERCENTS:
            scan_ms[pct] = measure(
                db, lambda: table.scan_as_of(marks[pct])
            ).simulated_ms
            point_ms[pct] = measure(
                db, lambda: _selective_query(db, table, marks[pct])
            ).simulated_ms
        scans[(inserts, updates)] = scan_ms
        selective[(inserts, updates)] = point_ms

    cfg_labels = [f"{k}x{u}" for k, u in CONFIGS]
    emit(
        format_table(
            "Figure 6a: full-scan AS OF latency (simulated ms)",
            ["% of history"] + cfg_labels,
            [
                [f"{pct}%"] + [scans[cfg][pct] for cfg in CONFIGS]
                for pct in HISTORY_PERCENTS
            ],
            note="100% = now; recent favours fewer inserts (fewer rows)",
        )
    )
    emit(
        format_table(
            "Figure 6b: per-retrieved-record AS OF cost (simulated ms/row)",
            ["% of history"] + cfg_labels,
            [
                [f"{pct}%"]
                + [scans[cfg][pct] / record_counts[cfg] for cfg in CONFIGS]
                for pct in HISTORY_PERCENTS
            ],
            note="deep history: more updates/record = longer chains = "
                 "costlier per record (the paper's reversal)",
        )
    )
    emit(
        format_table(
            'Figure 6c: selective "Oid < 10" AS OF latency (simulated ms)',
            ["% of history"] + cfg_labels,
            [
                [f"{pct}%"] + [selective[cfg][pct] for cfg in CONFIGS]
                for pct in HISTORY_PERCENTS
            ],
            note="fixed result size: the reversal is absolute — the "
                 "500x72 config walks the longest page chains",
        )
    )
    save_results(
        "fig6_asof_queries",
        {
            "configs": [
                {
                    "inserts": k,
                    "updates_per_record": u,
                    "scan_ms_by_percent": scans[(k, u)],
                    "selective_ms_by_percent": selective[(k, u)],
                }
                for k, u in CONFIGS
            ]
        },
    )

    most_updates = CONFIGS[0]
    fewest_updates = CONFIGS[-1]
    # Old as-of times cost more than recent ones (every config, both query kinds).
    for cfg in CONFIGS:
        assert scans[cfg][10] > scans[cfg][100], cfg
        assert selective[cfg][10] > selective[cfg][100], cfg
    # Recent full scan: fewer inserts retrieve fewer records → cheaper.
    assert scans[most_updates][100] < scans[fewest_updates][100]
    # The reversal, per record: deep history punishes long chains.
    assert (
        scans[most_updates][10] / record_counts[most_updates]
        > scans[fewest_updates][10] / record_counts[fewest_updates]
    )
    # The reversal, absolute, at fixed result size (the paper's example query).
    assert selective[most_updates][10] > selective[fewest_updates][10]

    def probe() -> None:
        db, table, marks = _build(200, 10, 1.0)
        table.scan_as_of(marks[50])

    benchmark.pedantic(probe, rounds=1, iterations=1)
