"""Ablation 3 — Key-split threshold T and single-timeslice utilization.

Paper Section 3.3: "We key split a page in addition to performing a time
split if storage utilization after a time split is above some threshold T,
say 70%.  This ensures that, in the absence of deletes, storage utilization
for any time slice will, under usual assumptions, be T·ln 2."

We sweep T, run a uniform update workload, and measure the *current-time
slice* utilization — bytes of current (head) versions per current page.
The measured utilization should track T·ln 2 ≈ 0.693·T, and current-time
scan cost should fall as T rises (fewer, fuller pages).
"""

from __future__ import annotations

import math

from conftest import bench_scale

from repro import ColumnType, ImmortalDB
from repro.bench import format_table, save_results
from repro.storage.constants import DATA_HEADER_SIZE

THRESHOLDS = (0.55, 0.65, 0.70, 0.80, 0.90)


def _run(threshold: float, keys: int, rounds: int) -> dict:
    """Grow a table with mixed inserts+updates until splits reach steady state.

    The T·ln2 law describes pages that repeatedly fill with *current*
    records, time split, and key split when still above T — so the
    workload must keep inserting new keys (committed between rounds) while
    updating existing ones.
    """
    db = ImmortalDB(
        buffer_pages=4096,
        key_split_threshold=threshold,
        ms_per_commit=0.0,
    )
    table = db.create_table(
        "t", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", immortal=True,
    )
    payload = "x" * 40
    import random

    rng = random.Random(99)
    # Random keys spread inserts over every leaf, so all pages cycle
    # through the fill → time-split → (maybe) key-split regime.
    inserted: list[int] = []
    seen: set[int] = set()
    per_round = max(10, keys // rounds)
    for r in range(rounds):
        db.clock.advance_ms(200.0)
        with db.transaction() as txn:
            for _ in range(per_round):
                k = rng.randrange(1_000_000_000)
                while k in seen:
                    k = rng.randrange(1_000_000_000)
                seen.add(k)
                inserted.append(k)
                table.insert(txn, {"k": k, "v": payload})
        if len(inserted) > per_round:
            db.clock.advance_ms(200.0)
            with db.transaction() as txn:
                for k in rng.sample(inserted, per_round):
                    table.update(txn, k, {"v": f"{r}-{payload}"})

    leaves = list(table.btree.leaves())
    current_bytes = sum(leaf.current_version_bytes() for leaf in leaves)
    capacity = sum(leaf.page_size - DATA_HEADER_SIZE for leaf in leaves)
    return {
        "threshold": threshold,
        "current_pages": len(leaves),
        "timeslice_utilization": current_bytes / capacity,
        "predicted": threshold * math.log(2),
        "time_splits": table.btree.stats.time_splits,
        "key_splits": table.btree.stats.key_splits,
    }


def test_abl3_split_threshold(benchmark, emit):
    scale = bench_scale()
    keys = max(300, int(1200 * scale))
    rounds = max(10, int(30 * scale))
    results = [_run(t, keys, rounds) for t in THRESHOLDS]

    emit(
        format_table(
            "Abl 3: key-split threshold T vs single-timeslice utilization",
            ["T", "current pages", "measured util", "T*ln2 predicted",
             "time splits", "key splits"],
            [
                [r["threshold"], r["current_pages"],
                 r["timeslice_utilization"], r["predicted"],
                 r["time_splits"], r["key_splits"]]
                for r in results
            ],
            note="paper: utilization for any time slice converges to T*ln2 "
                 "(Section 3.3, analysis in [21])",
        )
    )
    save_results("abl3_split_threshold", {"rows": results})

    # Utilization rises monotonically-ish with T and tracks T*ln2.
    utils = [r["timeslice_utilization"] for r in results]
    assert utils[-1] > utils[0]
    for r in results:
        # 'Under usual assumptions': allow a generous band around T*ln2.
        assert 0.55 * r["predicted"] < r["timeslice_utilization"] \
            < 1.75 * r["predicted"], r
    # Higher T = fewer current pages for the same live data.
    assert results[-1]["current_pages"] <= results[0]["current_pages"]

    benchmark.pedantic(
        lambda: _run(0.7, 200, 5), rounds=1, iterations=1
    )
