"""Shard scale-out benchmark: mixed throughput vs. shard count, gated.

The cluster's scale-out claim has two halves, and this harness gates both:

* **Scale-out.**  The same seeded mixed workload (fast-path updates,
  a cross-shard transfer slice that runs 2PC, point reads, as-of probes)
  runs against 1, 2 and 4 shards.  Each shard is modelled as its own
  machine — its own bounded buffer pool, its own disk — so the cluster's
  simulated time for a phase is the **max across shards** of the cost
  model's ``simulated_ms`` (shards work their partitions concurrently;
  the slowest shard finishes last).  The keyspace is sized to a large
  multiple of one shard's buffer budget, so the single-shard point is
  eviction-bound and the speedup measures real partitioning relief
  (smaller per-shard working set) on top of parallelism.  The gate
  (``--min-speedup``, default 2.0) is mixed throughput at 4 shards over
  1 shard on the parallel model.  The model's known simplification: the
  coordinator's decision log rides outside every shard's counters, so
  2PC cost is charged as the participants' extra forces/records only.
* **Fast-path overhead.**  Sharding must not tax the workload that does
  not need it.  The identical workload runs on a raw ``ImmortalDB`` and
  on a 1-shard cluster (every commit takes the single-shard fast path
  through the shared timestamp authority); the gate
  (``--max-overhead``, default 0.10) is the relative increase in
  simulated cost.  Both runs execute the identical op sequence, so the
  ratio is a pure function of the engines' deterministic counters.

Wall-clock numbers are reported alongside for both halves but not
gated: the driver is single-threaded Python, so cluster wall time sums
what the model correctly treats as concurrent, and on a dev box the OS
page cache absorbs the I/O the cost model exists to expose.

``BENCH_shard.json`` is the committed baseline; ``--compare`` fails the
run when any gated configuration's simulated cost regresses by more
than ``--tolerance`` (default 30 %).

Run it:

    PYTHONPATH=src python benchmarks/bench_shard.py --quick           # CI
    PYTHONPATH=src python benchmarks/bench_shard.py                   # full
    PYTHONPATH=src python benchmarks/bench_shard.py --quick \
        --compare BENCH_shard.json                                    # gate
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from dataclasses import dataclass

if __package__ in (None, ""):  # direct script invocation without PYTHONPATH
    _SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    if os.path.isdir(_SRC) and _SRC not in sys.path:
        sys.path.insert(0, _SRC)

from repro.bench.costmodel import COST_2005, stats_delta
from repro.cluster import ShardRouter
from repro.core.engine import ImmortalDB

SEED = 31
MS_PER_COMMIT = 5.0

COUNTER_KEYS = (
    "commits", "log_forces", "log_appends",
    "buffer_hits", "buffer_misses", "buffer_evictions",
    "buffer_dirty_evictions", "page_flushes",
    "disk_reads", "disk_writes", "stamps", "version_ops",
)


@dataclass(frozen=True)
class Sizes:
    keys: int             # global keyspace (uniformly hit by the mix)
    mixed_ops: int        # operations in the gated mixed phase
    buffer_pages: int     # per-shard pool: each shard is its own machine
    value_pad: int        # payload size → a handful of rows per 8 KiB page
    checkpoint_every: int  # mixed-phase checkpoint cadence


QUICK = Sizes(
    keys=1800, mixed_ops=2600, buffer_pages=32, value_pad=500,
    checkpoint_every=700,
)
FULL = Sizes(
    keys=12_000, mixed_ops=20_000, buffer_pages=96, value_pad=500,
    checkpoint_every=2500,
)

COLUMNS = [("k", "int"), ("v", "text")]


def _value(rng: random.Random, pad: int) -> str:
    return "v" + "x" * rng.randrange(pad // 2, pad)


# -- workload (identical op sequence for every configuration) ------------------


def _run_load(handle, table, sizes: Sizes, marks: list) -> int:
    """Insert the whole keyspace, checkpoint clean, leave an as-of mark."""
    rng = random.Random(SEED)
    batch = 16
    for base in range(0, sizes.keys, batch):
        with handle.transaction() as txn:
            for k in range(base, min(base + batch, sizes.keys)):
                table.insert(txn, {"k": k, "v": _value(rng, sizes.value_pad)})
    handle.flush_commits()
    handle.checkpoint(flush=True)
    marks.append(handle.now())
    return sizes.keys


def _run_mixed(handle, table, sizes: Sizes, marks: list) -> int:
    """The gated mix: 86 % fast-path updates, 6 % far-key transfers (2PC
    once the two keys land on different shards), 5 % point reads, 3 %
    as-of point probes at collected marks.

    The op sequence is a pure function of the seed and the *keyspace* —
    never of the shard count — so every configuration replays the same
    logical history and the simulated-cost ratio is a throughput ratio.
    """
    rng = random.Random(SEED + 1)
    done = 0
    next_checkpoint = sizes.checkpoint_every
    half = sizes.keys // 2
    while done < sizes.mixed_ops:
        draw = rng.random()
        if draw < 0.86:
            k = rng.randrange(sizes.keys)
            with handle.transaction() as txn:
                table.update(txn, k, {"v": _value(rng, sizes.value_pad)})
        elif draw < 0.92:
            # A transfer touching two keys half the keyspace apart: lands
            # on two different shards at every shard count > 1.
            k = rng.randrange(sizes.keys)
            partner = (k + half) % sizes.keys
            with handle.transaction() as txn:
                table.update(txn, k, {"v": _value(rng, sizes.value_pad)})
                table.update(
                    txn, partner, {"v": _value(rng, sizes.value_pad)}
                )
        elif draw < 0.97:
            with handle.transaction() as txn:
                table.read(txn, rng.randrange(sizes.keys))
        else:
            table.read_as_of(
                marks[rng.randrange(len(marks))], rng.randrange(sizes.keys)
            )
        done += 1
        if done >= next_checkpoint:
            handle.flush_commits()
            marks.append(handle.now())
            handle.checkpoint(flush=True)
            next_checkpoint += sizes.checkpoint_every
    handle.flush_commits()
    return sizes.mixed_ops


# -- measurement ---------------------------------------------------------------


def _shard_dbs(handle) -> list[ImmortalDB]:
    if isinstance(handle, ShardRouter):
        return [shard.db for shard in handle.shards]
    return [handle]


def _measure(handle, fn) -> dict:
    """One phase under the parallel cost model.

    Per-shard counter deltas are costed independently; the cluster's
    simulated time is the slowest shard's (they run concurrently), and
    the skew ratio max/mean says how balanced the partitioning was.
    """
    dbs = _shard_dbs(handle)
    before = [db.stats() for db in dbs]
    start = time.perf_counter()
    ops = fn()
    wall = time.perf_counter() - start
    deltas = [
        stats_delta(b, db.stats()) for b, db in zip(before, dbs)
    ]
    per_shard_ms = [COST_2005.simulated_ms(d) for d in deltas]
    cluster_ms = max(per_shard_ms)
    mean_ms = sum(per_shard_ms) / len(per_shard_ms)
    totals: dict = {}
    for delta in deltas:
        for key in COUNTER_KEYS:
            if key in delta:
                totals[key] = totals.get(key, 0) + delta[key]
    return {
        "ops": ops,
        "wall_seconds": round(wall, 6),
        "simulated_ms": round(cluster_ms, 3),
        "per_shard_simulated_ms": [round(ms, 3) for ms in per_shard_ms],
        "shard_skew": round(cluster_ms / mean_ms, 3) if mean_ms else None,
        "sim_ops_per_sec": round(ops / (cluster_ms / 1000.0), 1)
        if cluster_ms > 0 else float("inf"),
        "wall_ops_per_sec": round(ops / wall, 1) if wall > 0 else float("inf"),
        "counters": totals,
    }


def _data_pages(handle) -> int:
    total = 0
    for db in _shard_dbs(handle):
        pc = getattr(db.disk, "page_count", 0)
        total += pc() if callable(pc) else pc
    return total


def run_config(*, shards: int, sizes: Sizes, raw_engine: bool = False) -> dict:
    """Load + mixed under one configuration; returns phases and counters."""
    marks: list = []
    if raw_engine:
        handle = ImmortalDB(
            buffer_pages=sizes.buffer_pages, ms_per_commit=MS_PER_COMMIT,
        )
        table = handle.create_table("kv", COLUMNS, key="k", immortal=True)
    else:
        handle = ShardRouter.for_int_keys(
            shards, key_space=sizes.keys,
            ms_per_commit=MS_PER_COMMIT, buffer_pages=sizes.buffer_pages,
        )
        table = handle.create_table("kv", COLUMNS, key="k", immortal=True)
    out: dict = {
        "shards": shards,
        "raw_engine": raw_engine,
        "buffer_pages_per_shard": sizes.buffer_pages,
    }
    out["load"] = _measure(handle, lambda: _run_load(
        handle, table, sizes, marks))
    out["mixed"] = _measure(handle, lambda: _run_mixed(
        handle, table, sizes, marks))
    out["data_pages"] = _data_pages(handle)
    out["data_to_buffer_ratio"] = round(
        out["data_pages"] / (sizes.buffer_pages * max(1, shards)), 2
    )
    if not raw_engine:
        out["fastpath_commits"] = handle.fastpath_commits
        out["twopc_commits"] = handle.twopc_commits
    handle.close()
    return out


def run_bench(*, quick: bool, shard_counts=(1, 2, 4)) -> dict:
    sizes = QUICK if quick else FULL
    payload: dict = {
        "quick": quick,
        "seed": SEED,
        "keys": sizes.keys,
        "mixed_ops": sizes.mixed_ops,
        "buffer_pages_per_shard": sizes.buffer_pages,
        "value_pad": sizes.value_pad,
    }
    payload["raw"] = run_config(shards=1, sizes=sizes, raw_engine=True)
    payload["cluster"] = {
        str(n): run_config(shards=n, sizes=sizes) for n in shard_counts
    }
    one = payload["cluster"]["1"]["mixed"]
    four = payload["cluster"][str(max(shard_counts))]["mixed"]
    payload["scaleout"] = {
        "shards": max(shard_counts),
        "speedup": round(
            one["simulated_ms"] / four["simulated_ms"], 3
        ),
        "throughput_curve": {
            str(n): payload["cluster"][str(n)]["mixed"]["sim_ops_per_sec"]
            for n in shard_counts
        },
    }
    raw_ms = payload["raw"]["mixed"]["simulated_ms"]
    one_ms = one["simulated_ms"]
    payload["fastpath"] = {
        "raw_simulated_ms": raw_ms,
        "one_shard_simulated_ms": one_ms,
        "overhead": round(one_ms / raw_ms - 1.0, 4),
    }
    return payload


# -- gates ---------------------------------------------------------------------


def check_pressure(payload: dict) -> list[str]:
    """The single-shard point must be genuinely eviction-bound, and the
    workload must have exercised both commit paths at every shard count
    above one — otherwise the speedup is measuring the wrong thing."""
    problems = []
    one = payload["cluster"]["1"]
    if one["data_to_buffer_ratio"] < 2.0:
        problems.append(
            f"keyspace is only {one['data_to_buffer_ratio']}x one shard's "
            "buffer budget — the single-shard point is not eviction-bound"
        )
    if one["mixed"]["counters"].get("buffer_evictions", 0) <= 0:
        problems.append(
            "1-shard mixed phase reported no evictions — in-memory numbers "
            "are not scale-out numbers"
        )
    for name, config in payload["cluster"].items():
        if config["shards"] > 1 and config["twopc_commits"] <= 0:
            problems.append(
                f"{name}-shard run never took the 2PC path — the transfer "
                "slice is not crossing shards"
            )
        if config["fastpath_commits"] <= 0:
            problems.append(f"{name}-shard run never took the fast path")
    return problems


def compare_against(
    baseline: dict, current: dict, tolerance: float
) -> list[str]:
    """Simulated-cost regressions beyond ``tolerance`` (deterministic)."""
    problems = []
    if baseline.get("quick") != current.get("quick"):
        return [
            "baseline and current run disagree on --quick mode; "
            "absolute simulated_ms is only comparable within one mode"
        ]
    checks = [("raw", baseline.get("raw"), current.get("raw"))]
    for name, base in (baseline.get("cluster") or {}).items():
        checks.append(
            (f"cluster/{name}", base, (current.get("cluster") or {}).get(name))
        )
    for name, base, now in checks:
        if base is None:
            continue
        if now is None:
            problems.append(f"{name}: missing from current run")
            continue
        for phase in ("load", "mixed"):
            ceiling = base[phase]["simulated_ms"] * (1.0 + tolerance)
            if now[phase]["simulated_ms"] > ceiling:
                problems.append(
                    f"{name}/{phase}: {now[phase]['simulated_ms']:.1f} "
                    f"simulated ms is above {ceiling:.1f} (baseline "
                    f"{base[phase]['simulated_ms']:.1f} + "
                    f"{tolerance:.0%} tolerance)"
                )
    return problems


# -- CLI -----------------------------------------------------------------------


def _print_config(name: str, config: dict) -> None:
    for phase in ("load", "mixed"):
        r = config[phase]
        c = r["counters"]
        print(f"{name:>9}/{phase:<5} {r['simulated_ms']:>10.0f} sim-ms "
              f"{r['sim_ops_per_sec']:>9.1f} sim-ops/s "
              f"{r['wall_seconds']:>6.2f} wall-s "
              f"(skew {r['shard_skew']}, "
              f"evictions {c.get('buffer_evictions', '?')}, "
              f"reads {c.get('disk_reads', '?')}, "
              f"writes {c.get('disk_writes', '?')}, "
              f"forces {c.get('log_forces', '?')})")
    if "twopc_commits" in config:
        print(f"{'':>9} fastpath {config['fastpath_commits']}, "
              f"2pc {config['twopc_commits']}, "
              f"data {config['data_pages']} pages "
              f"({config['data_to_buffer_ratio']}x per-shard pool)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_shard.py",
        description="Shard scale-out benchmark with speedup and "
                    "fast-path-overhead gates.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload (the committed baseline)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the JSON here (default: print only)")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="fail if simulated cost regresses vs this JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail if 4-shard mixed speedup vs 1 shard is "
                             "below this (default 2.0)")
    parser.add_argument("--max-overhead", type=float, default=0.10,
                        help="fail if the 1-shard fast path costs more than "
                             "this fraction over the raw engine "
                             "(default 0.10)")
    args = parser.parse_args(argv)

    payload = run_bench(quick=args.quick)

    _print_config("raw", payload["raw"])
    for name in sorted(payload["cluster"], key=int):
        _print_config(f"{name}-shard", payload["cluster"][name])
    scale = payload["scaleout"]
    fast = payload["fastpath"]
    curve = ", ".join(
        f"{n}:{v:.1f}" for n, v in scale["throughput_curve"].items()
    )
    print(f"scale-out: {scale['speedup']:.2f}x mixed throughput at "
          f"{scale['shards']} shards vs 1 (gate >= {args.min_speedup:.2f}x; "
          f"sim-ops/s curve {curve})")
    print(f"fast path: {fast['overhead']:+.1%} simulated cost vs raw engine "
          f"(gate <= {args.max_overhead:+.0%})")

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")

    failed = False
    for problem in check_pressure(payload):
        print(f"FAIL {problem}")
        failed = True
    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        problems = compare_against(baseline, payload, args.tolerance)
        for problem in problems:
            print(f"REGRESSION {problem}")
            failed = True
        if not problems:
            print(f"no regression vs {args.compare} "
                  f"(tolerance {args.tolerance:.0%})")
    if scale["speedup"] < args.min_speedup:
        print(f"FAIL: {scale['shards']}-shard mixed speedup "
              f"{scale['speedup']:.2f}x is below the "
              f"{args.min_speedup:.2f}x gate")
        failed = True
    if fast["overhead"] > args.max_overhead:
        print(f"FAIL: 1-shard fast path costs {fast['overhead']:+.1%} over "
              f"the raw engine, above the {args.max_overhead:+.0%} gate")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
