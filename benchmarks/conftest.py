"""Shared helpers for the benchmark suite.

Scale control: set ``IMMORTAL_BENCH_SCALE=quick`` for a fast smoke run
(~10x smaller); the default reproduces the paper's full transaction counts.
Each bench prints its paper-shaped table through ``capsys.disabled()`` so
it lands in ``bench_output.txt``, and persists rows to ``results/*.json``.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """1.0 = the paper's full scale; quick mode shrinks workloads 10x."""
    return 0.1 if os.environ.get("IMMORTAL_BENCH_SCALE") == "quick" else 1.0


@pytest.fixture
def emit(capsys):
    """Print a report straight to the terminal (and bench_output.txt)."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _emit
