"""Comparison 1 — Immortal DB vs the Section-6 related systems.

The paper's architectural comparisons, turned into measurements over the
same workload (one table, K records, R update rounds, as-of probes at
increasing depth):

* **Immortal DB**: as-of cost grows only with the time-split page chain
  (and is flat with the TSB index — Abl 2);
* **Oracle Flashback**: reconstructs from undo, so as-of cost grows
  *linearly in the number of updates since the as-of time* — across the
  whole table, not per record;
* **Postgres-style two-store**: every as-of probe pays for both stores,
  and vacuum scatters a record's versions over archive pages;
* **Rdb commit lists**: snapshot reads are cheap, but arbitrary-past AS OF
  raises — there is nothing to measure.
"""

from __future__ import annotations

import pytest
from conftest import bench_scale

from repro.baselines.flashback import FlashbackTable
from repro.baselines.postgres_style import PostgresStyleTable
from repro.baselines.rdb_commitlist import AsOfNotSupportedError, RdbCommitListTable
from repro.bench import format_table, fresh_moving_objects_db, measure, save_results
from repro.clock import Timestamp

DEPTHS = (10, 50, 90)   # percent of history; lower = older


def _drive_immortal(keys: int, rounds: int):
    db, table = fresh_moving_objects_db(immortal=True)
    marks = {}
    with db.transaction() as txn:
        for k in range(keys):
            table.insert(txn, {"Oid": k, "LocationX": 0, "LocationY": 0})
    for r in range(rounds):
        db.clock.advance_ms(50.0)
        with db.transaction() as txn:
            for k in range(keys):
                table.update(txn, k, {"LocationX": r, "LocationY": r})
        marks[r] = db.now()
    return db, table, marks


def test_cmp1_related_work(benchmark, emit):
    scale = bench_scale()
    keys = max(24, int(64 * scale))
    rounds = max(60, int(240 * scale))
    probe_keys = list(range(0, keys, max(1, keys // 8)))

    # --- Immortal DB -----------------------------------------------------
    db, table, marks = _drive_immortal(keys, rounds)
    immortal_ms = {}
    for pct in DEPTHS:
        r = max(0, rounds * pct // 100 - 1)
        m = measure(
            db, lambda: [table.read_as_of(marks[r], k) for k in probe_keys]
        )
        immortal_ms[pct] = m.simulated_ms / len(probe_keys)

    # --- Flashback ---------------------------------------------------------
    fb = FlashbackTable()
    now_ms = 0.0
    fb_scns = {}
    for k in range(keys):
        now_ms += 10
        fb.insert(now_ms, k, {"x": 0})
    for r in range(rounds):
        for k in range(keys):
            now_ms += 10
            fb.update(now_ms, k, {"x": r})
        fb_scns[r] = fb._scn
    flashback_scans = {}
    for pct in DEPTHS:
        r = max(0, rounds * pct // 100 - 1)
        before = fb.metrics.undo_records_scanned
        for k in probe_keys:
            fb.read_as_of_scn(fb_scns[r], k)
        flashback_scans[pct] = (
            fb.metrics.undo_records_scanned - before
        ) / len(probe_keys)

    # --- Postgres-style ---------------------------------------------------------
    pg = PostgresStyleTable()
    tick = 1
    pg_marks = {}
    for k in range(keys):
        pg.insert(Timestamp(tick, 0), k, {"x": 0})
        tick += 1
    for r in range(rounds):
        for k in range(keys):
            pg.update(Timestamp(tick, 0), k, {"x": r})
            tick += 1
        pg_marks[r] = Timestamp(tick - 1, 1)
        if (r + 1) % 10 == 0:
            pg.vacuum()
    pg.vacuum()
    pg_pages = {}
    for pct in DEPTHS:
        r = max(0, rounds * pct // 100 - 1)
        before = pg.metrics.archive_pages_probed
        for k in probe_keys:
            pg.read_as_of(pg_marks[r], k)
        pg_pages[pct] = (
            pg.metrics.archive_pages_probed - before
        ) / len(probe_keys)

    # --- Rdb -----------------------------------------------------------------------
    rdb = RdbCommitListTable()
    tsn = rdb.begin_update()
    for k in range(keys):
        rdb.write(tsn, k, {"x": 0})
    rdb.commit(tsn)
    snap = rdb.begin_snapshot()
    tsn2 = rdb.begin_update()
    rdb.write(tsn2, 0, {"x": 999})
    rdb.commit(tsn2)
    assert rdb.snapshot_read(snap, 0) == {"x": 0}   # snapshot works
    with pytest.raises(AsOfNotSupportedError):
        rdb.as_of_read("yesterday", 0)              # arbitrary past does not

    rows = []
    for pct in DEPTHS:
        rows.append([
            f"{pct}%",
            immortal_ms[pct],
            flashback_scans[pct],
            pg_pages[pct],
            "unsupported",
        ])
    emit(
        format_table(
            "Cmp 1: AS OF point reads across architectures",
            ["% of history", "Immortal ms/read",
             "Flashback undo recs/read", "Postgres archive pages/read",
             "Rdb commit lists"],
            rows,
            note="Flashback scans the global undo stream; Postgres probes "
                 "both stores; Rdb cannot answer arbitrary-past AS OF at all",
        )
    )
    save_results(
        "cmp1_related_work",
        {
            "immortal_ms": immortal_ms,
            "flashback_undo_scanned": flashback_scans,
            "postgres_archive_pages": pg_pages,
        },
    )

    # Flashback degrades dramatically with depth (global undo scan).
    assert flashback_scans[10] > 5 * max(flashback_scans[90], 1)
    # Its deep-history scan volume dwarfs the whole-table update count of
    # the same depth for Immortal DB's per-leaf page chains.
    assert flashback_scans[10] > keys * rounds * 0.5
    # Postgres archive probing touches multiple scattered pages per read.
    assert pg_pages[10] >= 1.0
    # Immortal DB also grows with depth, but stays page-chain bounded.
    assert immortal_ms[10] >= immortal_ms[90]

    benchmark.pedantic(
        lambda: [table.read_as_of(marks[rounds // 2], k) for k in probe_keys],
        rounds=1, iterations=1,
    )
