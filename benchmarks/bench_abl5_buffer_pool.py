"""Ablation 5 — buffer pool size vs AS OF query cost.

Not a paper figure, but the design dimension its Section 5.2 numbers sit
on: deep AS OF queries walk long time-split page chains, and whether those
chains are cached decides how much of the cost is CPU vs random I/O.  The
paper ran with 256 MB of RAM against a small database (everything hot);
production histories dwarf memory.

We fix the workload and sweep the buffer pool: once history no longer
fits, deep AS OF scans shift from cache hits to random reads and their
simulated cost jumps by an order of magnitude, while current-time reads
(whose working set is just the current pages) stay cheap.
"""

from __future__ import annotations

from conftest import bench_scale

from repro import ColumnType, ImmortalDB
from repro.bench import format_table, measure, save_results

BUFFER_SIZES = (16, 64, 256, 1024)


def _build(buffer_pages: int, keys: int, rounds: int):
    db = ImmortalDB(buffer_pages=buffer_pages, ms_per_commit=0.0)
    table = db.create_table(
        "t", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", immortal=True,
    )
    with db.transaction() as txn:
        for k in range(keys):
            table.insert(txn, {"k": k, "v": "x" * 60})
    marks = {}
    for r in range(rounds):
        db.clock.advance_ms(60.0)
        with db.transaction() as txn:
            for k in range(keys):
                table.update(txn, k, {"v": f"r{r}" + "y" * 60})
        marks[r] = db.now()
    # Cool the cache to a steady state: flush, drop, touch current pages.
    db.buffer.flush_all()
    db.buffer.discard_all()
    for leaf in table.btree.leaves():
        pass
    return db, table, marks


def test_abl5_buffer_pool_size(benchmark, emit):
    scale = bench_scale()
    keys = max(40, int(120 * scale))
    rounds = max(40, int(120 * scale))
    rows = []
    payload = []
    for pages in BUFFER_SIZES:
        db, table, marks = _build(pages, keys, rounds)
        deep = measure(db, lambda: table.scan_as_of(marks[2]))
        # Second run of the same query: measures what stays cached.
        deep_again = measure(db, lambda: table.scan_as_of(marks[2]))
        with db.transaction() as txn:
            current = measure(db, lambda: table.scan(txn))
        rows.append([
            pages,
            db.disk.page_count,
            deep.simulated_ms,
            deep.delta["disk_reads"],
            deep_again.simulated_ms,
            current.simulated_ms,
        ])
        payload.append({
            "buffer_pages": pages,
            "db_pages": db.disk.page_count,
            "deep_cold_ms": deep.simulated_ms,
            "deep_cold_reads": deep.delta["disk_reads"],
            "deep_warm_ms": deep_again.simulated_ms,
            "current_ms": current.simulated_ms,
        })

    emit(
        format_table(
            "Abl 5: buffer pool size vs AS OF cost",
            ["buffer pages", "db pages", "deep as-of ms (cold)",
             "disk reads", "deep as-of ms (rerun)", "current scan ms"],
            rows,
            note="once history exceeds the pool, deep as-of pays random "
                 "I/O per chain hop and reruns cannot stay cached",
        )
    )
    save_results("abl5_buffer_pool", {"rows": payload})

    smallest, largest = payload[0], payload[-1]
    # A too-small pool forces disk reads on the deep query...
    assert smallest["deep_cold_reads"] > 0
    # ... and cannot keep the chain cached across reruns.
    assert smallest["deep_warm_ms"] >= smallest["deep_cold_ms"] * 0.5
    # A big pool keeps the rerun nearly free.
    assert largest["deep_warm_ms"] < largest["deep_cold_ms"] * 0.5 + 5.0
    # Current-time scans stay cheap at every pool size.
    assert all(p["current_ms"] < p["deep_cold_ms"] for p in payload)

    benchmark.pedantic(
        lambda: _build(64, 30, 20), rounds=1, iterations=1
    )
