"""Ablation 2 — TSB-tree indexed AS OF access vs page-chain traversal.

Paper Section 5.2: "We currently sequentially scan the chain of pages
starting at the current page … We expect that the performance of as of
queries, independent of the time requested, to equal current time queries
once we implement the TSB-tree to index the versions."

We build identical deep histories with and without the TSB history index
and issue point AS OF reads at increasing depth.  Chain traversal degrades
linearly with depth; the TSB-indexed path stays flat.
"""

from __future__ import annotations

from conftest import bench_scale

from repro.bench import (
    format_table,
    fresh_moving_objects_db,
    measure,
    save_results,
)
from repro.clock import Timestamp

DEPTH_PERCENTS = (10, 25, 50, 75, 100)


def _build(use_tsb: bool, rounds: int):
    db, table = fresh_moving_objects_db(immortal=True, use_tsb_index=use_tsb)
    keys = 32
    with db.transaction() as txn:
        for k in range(keys):
            table.insert(txn, {"Oid": k, "LocationX": 0, "LocationY": 0})
    marks: dict[int, Timestamp] = {}
    for r in range(rounds):
        db.clock.advance_ms(40.0)
        with db.transaction() as txn:
            for k in range(keys):
                table.update(txn, k, {"LocationX": r, "LocationY": r})
        for pct in DEPTH_PERCENTS:
            if r + 1 == max(1, rounds * pct // 100):
                marks[pct] = db.now()
    marks[100] = db.now()
    return db, table, marks


def _probe(db, table, ts, repeats: int = 20) -> float:
    def body() -> None:
        for k in range(0, 32, 4):
            for _ in range(repeats // 8 + 1):
                table.read_as_of(ts, k)

    return measure(db, body).simulated_ms


def test_abl2_tsb_vs_chain(benchmark, emit):
    rounds = max(60, int(600 * bench_scale()))
    db_chain, table_chain, marks = _build(use_tsb=False, rounds=rounds)
    db_tsb, table_tsb, marks_tsb = _build(use_tsb=True, rounds=rounds)

    rows = []
    payload = []
    for pct in DEPTH_PERCENTS:
        # Lower percent = older as-of time = deeper in the page chain.
        chain_ms = _probe(db_chain, table_chain, marks[pct])
        tsb_ms = _probe(db_tsb, table_tsb, marks_tsb[pct])
        rows.append([f"{pct}%", chain_ms, tsb_ms,
                     chain_ms / tsb_ms if tsb_ms else float("inf")])
        payload.append({"percent": pct, "chain_ms": chain_ms,
                        "tsb_ms": tsb_ms})

    # Sanity: both structures return identical answers.
    for pct in DEPTH_PERCENTS:
        for k in (0, 16, 28):
            assert (
                table_chain.read_as_of(marks[pct], k)
                == table_tsb.read_as_of(marks_tsb[pct], k)
            ), (pct, k)

    emit(
        format_table(
            "Abl 2: AS OF point reads — page-chain walk vs TSB-tree index",
            ["% of history", "chain walk ms", "TSB index ms", "speedup"],
            rows,
            note=f"history: {rounds} update rounds; "
                 f"{table_chain.btree.stats.time_splits} time splits; "
                 f"TSB leaf entries: "
                 f"{table_tsb.history_index.leaf_entry_count()}",
        )
    )
    save_results("abl2_tsbtree", {"rows": payload, "rounds": rounds})

    oldest, newest = payload[0], payload[-1]
    shallow_indexed = payload[-2]  # 75%: still historical, still indexed
    # Chain traversal degrades with depth...
    assert oldest["chain_ms"] > 3 * max(newest["chain_ms"], 0.1)
    # ... the TSB index is flat across depths ("independent of the time
    # requested", Section 5.2) — compare two indexed depths.
    assert oldest["tsb_ms"] < 1.5 * shallow_indexed["tsb_ms"] + 1.0
    # And deep history is much cheaper through the index.
    assert oldest["tsb_ms"] < oldest["chain_ms"] / 2

    benchmark.pedantic(
        lambda: _probe(db_tsb, table_tsb, marks_tsb[10]),
        rounds=1, iterations=1,
    )
