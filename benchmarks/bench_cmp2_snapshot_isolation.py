"""Comparison 2 — Snapshot isolation read performance (paper Section 1.2).

"It also supports snapshot isolation with excellent performance, as
confirmed by our experimental study."  The claims measured here:

* snapshot readers take **no locks** and are never blocked by a concurrent
  update stream, while serializable readers conflict;
* a snapshot read usually finds its version in the current page; only
  occasionally does it follow the chain to the first history page
  (Section 3.4);
* enabling versioning on a conventional table costs little for readers.
"""

from __future__ import annotations

from conftest import bench_scale

from repro import ColumnType, ImmortalDB, TxnMode
from repro.bench import format_table, measure, save_results
from repro.errors import LockConflictError


def _setup(keys: int):
    db = ImmortalDB(buffer_pages=2048, ms_per_commit=2.0)
    table = db.create_table(
        "t", [("k", ColumnType.INT), ("v", ColumnType.TEXT)],
        key="k", snapshot=True,
    )
    with db.transaction() as txn:
        for k in range(keys):
            table.insert(txn, {"k": k, "v": "base" + "x" * 30})
    return db, table


def test_cmp2_snapshot_isolation(benchmark, emit):
    scale = bench_scale()
    keys = max(100, int(400 * scale))
    reads = max(500, int(2000 * scale))
    db, table = _setup(keys)

    # A long-running writer holds X locks on a slice of the table.
    writer = db.begin()
    for k in range(0, keys, 4):
        table.update(writer, k, {"v": "in-flight"})

    # Serializable readers block (conflict) on the locked records.
    serializable_conflicts = 0
    for k in range(0, keys, 4):
        reader = db.begin()
        try:
            table.read(reader, k)
        except LockConflictError:
            serializable_conflicts += 1
        db.abort(reader)

    # Snapshot readers sail through, and take zero locks.
    snap = db.begin(TxnMode.SNAPSHOT)
    m_blocked_region = measure(
        db, lambda: [table.read(snap, k) for k in range(0, keys, 4)]
    )
    assert db.locks.locks_held(snap.tid) == 0
    blocked_rows = [table.read(snap, k) for k in range(0, keys, 4)]
    assert all(row["v"].startswith("base") for row in blocked_rows)
    db.commit(snap)
    db.commit(writer)

    # Throughput probe: interleave single-row update txns with snapshot
    # reads; measure reader cost while history accumulates.
    reader_ms = []
    chain_reads = 0
    for i in range(reads):
        with db.transaction() as txn:
            table.update(txn, i % keys, {"v": f"u{i}" + "y" * 30})
        if i % 10 == 0:
            snap = db.begin(TxnMode.SNAPSHOT)
            m = measure(
                db, lambda: [table.read(snap, (i + d) % keys) for d in range(8)]
            )
            reader_ms.append(m.simulated_ms / 8)
            chain_reads += m.delta["asof_chain_hops"]
            db.commit(snap)

    avg_read = sum(reader_ms) / len(reader_ms)
    emit(
        format_table(
            "Cmp 2: snapshot isolation read performance",
            ["metric", "value"],
            [
                ["serializable readers blocked by writer",
                 f"{serializable_conflicts}/{keys // 4 + 1}"],
                ["snapshot readers blocked by writer", "0"],
                ["locks taken by snapshot reader", 0],
                ["avg snapshot read (sim ms)", avg_read],
                ["history-page hops across all snapshot reads", chain_reads],
                ["update txns interleaved", reads],
            ],
            note="snapshot reads are lock-free and almost always satisfied "
                 "from the current page (Section 3.4)",
        )
    )
    save_results(
        "cmp2_snapshot_isolation",
        {
            "serializable_conflicts": serializable_conflicts,
            "avg_snapshot_read_ms": avg_read,
            "chain_hops": chain_reads,
        },
    )

    assert serializable_conflicts > 0          # locking readers do block
    assert avg_read < 1.0                      # snapshot reads are cheap
    # "We expect to usually find the desired recent version … in the
    # current page.  Occasionally we will need to access the first
    # historical page" — hops are rare relative to reads.
    assert chain_reads < len(reader_ms) * 8 * 0.2

    benchmark.pedantic(
        lambda: _setup(50), rounds=1, iterations=1
    )
